open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

let cycles_per_bit = 2
let frame_bits = 10 (* start + 8 data + stop *)
let frame_cycles = frame_bits * cycles_per_bit

(* The frame as transmitted, stop bit down to start bit. *)
let frame_of byte = concat_list [ bv ~width:1 1; byte; bv ~width:1 0 ]

let ila =
  let tx_valid = bool_var "tx_valid" in
  let tx_byte = bv_var "tx_byte" 8 in
  let frames_sent = bv_var "frames_sent" 8 in
  Ila.make ~name:"UART-TX"
    ~inputs:[ ("tx_valid", Sort.bool); ("tx_byte", Sort.bv 8) ]
    ~states:
      [
        Ila.state "buffer" (Sort.bv 8) ~kind:Ila.Internal ();
        Ila.state "tx_busy" Sort.bool ();
        Ila.state "frames_sent" (Sort.bv 8) ();
        Ila.state "last_frame" (Sort.bv frame_bits) ();
      ]
    ~instructions:
      [
        (* one architectural step = one whole frame: the byte is
           latched, shifted out on the line, and the module is idle
           again with the sent frame recorded *)
        Ila.instr "SEND" ~decode:tx_valid
          ~updates:
            [
              ("buffer", tx_byte);
              ("tx_busy", ff);
              ("frames_sent", add_int frames_sent 1);
              ("last_frame", frame_of tx_byte);
            ]
          ();
        Ila.instr "TX_IDLE" ~decode:(not_ tx_valid) ~updates:[] ();
      ]

let rtl =
  let tx_valid = bool_var "tx_valid" in
  let tx_byte = bv_var "tx_byte" 8 in
  let busy = bool_var "busy" in
  let shifter = bv_var "shifter" frame_bits in
  let bit_cnt = bv_var "bit_cnt" 4 in
  let clk_cnt = bv_var "clk_cnt" 2 in
  let capture = bv_var "capture" frame_bits in
  let accept = bool_var "accept_w" in
  let boundary = bool_var "boundary_w" in
  let last_bit = bool_var "last_bit_w" in
  Rtl.make ~name:"uart_tx"
    ~inputs:[ ("tx_valid", Sort.bool); ("tx_byte", Sort.bv 8) ]
    ~wires:
      [
        ("accept_w", tx_valid &&: not_ busy);
        (* end of the current bit period *)
        ("boundary_w", busy &&: eq_int clk_cnt (cycles_per_bit - 1));
        ("last_bit_w", eq_int bit_cnt (frame_bits - 1));
        ("tx_line", bit shifter 0);
      ]
    ~registers:
      [
        Rtl.reg "busy" Sort.bool
          (ite accept tt (ite (boundary &&: last_bit) ff busy));
        Rtl.reg "shifter" (Sort.bv frame_bits)
          (ite accept (frame_of tx_byte)
             (ite boundary
                (concat (bv ~width:1 1) (extract ~hi:(frame_bits - 1) ~lo:1 shifter))
                shifter));
        Rtl.reg "bit_cnt" (Sort.bv 4)
          (ite accept (bv ~width:4 0)
             (ite boundary (add_int bit_cnt 1) bit_cnt));
        Rtl.reg "clk_cnt" (Sort.bv 2)
          (ite accept (bv ~width:2 0)
             (ite busy
                (ite boundary (bv ~width:2 0) (add_int clk_cnt 1))
                clk_cnt));
        (* loopback capture of the actual line value at each boundary:
           after ten bits it holds the frame exactly *)
        Rtl.reg "capture" (Sort.bv frame_bits)
          (ite boundary
             (concat (bool_to_bv (bool_var "tx_line"))
                (extract ~hi:(frame_bits - 1) ~lo:1 capture))
             capture);
        Rtl.reg "buffer_q" (Sort.bv 8)
          (ite accept tx_byte (bv_var "buffer_q" 8));
        Rtl.reg "frames_q" (Sort.bv 8)
          (ite (boundary &&: last_bit)
             (add_int (bv_var "frames_q" 8) 1)
             (bv_var "frames_q" 8));
      ]
    ~outputs:[ "tx_line"; "busy"; "frames_q" ]

let refmap_for rtl port =
  if port <> "UART-TX" then
    invalid_arg ("Uart_tx.refmap_for: unknown port " ^ port);
  let not_busy = not_ (bool_var "busy") in
  Refmap.make ~ila ~rtl
    ~state_map:
      [
        ("buffer", bv_var "buffer_q" 8);
        ("tx_busy", bool_var "busy");
        ("frames_sent", bv_var "frames_q" 8);
        ("last_frame", bv_var "capture" frame_bits);
      ]
    ~interface_map:
      [ ("tx_valid", bool_var "tx_valid"); ("tx_byte", bv_var "tx_byte" 8) ]
    ~instruction_maps:
      [
        (* the frame takes a fixed number of cycles, but the natural
           specification is "check when the shifter is idle again" —
           the Within form also proves the frame *does* finish *)
        Refmap.imap "SEND" ~start:not_busy
          (Refmap.Within
             { bound = frame_cycles + 2; condition = not_ (bool_var "busy") });
        Refmap.imap "TX_IDLE" ~start:not_busy (Refmap.After_cycles 1);
      ]
    ()

let design =
  {
    Design.name = "UART TX";
    description =
      "UART transmitter: one SEND instruction covering a whole serial \
       frame, verified with a Within (bounded-liveness) finish condition \
       against the loopback-captured line";
    module_class = Design.Single_port;
    ports_before_integration = 1;
    module_ila = Compose.union ~name:"UART-TX" [ ila ];
    rtl;
    refmap_for;
    bugs = [];
    coverage_assumptions = (fun _ -> []);
  }
