(** Case study: AXI slave (Fig. 2 of the paper; multiple command
    interfaces, no shared state).

    Two independent ports accept read and write transactions
    simultaneously:

    - READ-port (4 (sub-)instructions): wait for / commit a read
      address, then prepare and commit data beats.  Data presentation
      depends on the {e registered} burst mode [tx_rd_burst]: INCR
      bursts pass the downstream data through, FIXED bursts present it
      byte-swapped, and the beat address advances only for INCR.
    - WRITE-port (5 (sub-)instructions): wait for / commit a write
      address, then accept data beats and issue the final response.

    The paper's bug is reproduced as [bug_rd_burst]: the buggy RTL
    computes the read data from the {e input pin} [rd_burst_in] instead
    of the architectural state [tx_rd_burst], so a command presented
    mid-burst corrupts the remaining beats. *)

val read_port : Ilv_core.Ila.t
val write_port : Ilv_core.Ila.t
val rtl : Ilv_rtl.Rtl.t
val design : Design.t
