(** Case study: the OpenPiton L2 cache (Sec. V-B4 of the paper;
    multiple command interfaces without shared state).

    The module sits between the L1.5 cache and the NoC, with two
    parallel pipelines modeled as independent ports:

    - PIPE1-port (2 instructions): LOAD_MISS / STORE_MISS from the
      L1.5.  The implementation is a three-stage pipeline (request
      latch, tag lookup, MSHR allocate + NoC request issue) whose stage
      occupancy flags are [msg_flag_1..3]; the commit is gated by
      [msg_flag_3].
    - PIPE2-port (6 instructions): one per NoC message type (FILL, INV,
      RD_FWD, WR_UPD, WB_ACK, NOP) maintaining the data/tag/state
      arrays through a two-stage lookup-then-merge pipeline.

    The paper's bug is reproduced as [bug_msg_flag]: the informal
    document's typo makes the implementation gate the PIPE1 commit with
    [msg_flag_2] instead of [msg_flag_3], committing stage-3 registers
    one cycle before they hold the travelling request. *)

val pipe1_port : Ilv_core.Ila.t
val pipe2_port : Ilv_core.Ila.t
val design : Design.t
