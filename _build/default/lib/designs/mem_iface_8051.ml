open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

let rom_port =
  let rom_req = bool_var "rom_req" in
  let rom_data_valid = bool_var "rom_data_valid" in
  Ila.make ~name:"ROM-PORT"
    ~inputs:
      [
        ("rom_req", Sort.bool);
        ("rom_addr_in", Sort.bv 16);
        ("rom_data_valid", Sort.bool);
        ("rom_data_in", Sort.bv 8);
      ]
    ~states:
      [
        Ila.state "rom_addr" (Sort.bv 16) ();
        Ila.state "rom_data" (Sort.bv 8) ();
        Ila.state "mem_wait" (Sort.bv 1) ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "ROM_REQ" ~decode:rom_req
          ~updates:
            [
              ("rom_addr", bv_var "rom_addr_in" 16);
              ("mem_wait", bv ~width:1 1);
            ]
          ();
        Ila.instr "ROM_RESP"
          ~decode:(not_ rom_req &&: rom_data_valid)
          ~updates:[ ("rom_data", bv_var "rom_data_in" 8) ]
          ();
        Ila.instr "ROM_IDLE"
          ~decode:(not_ rom_req &&: not_ rom_data_valid)
          ~updates:[ ("mem_wait", bv ~width:1 0) ]
          ();
      ]

let ram_port =
  let ram_req = bool_var "ram_req" in
  let ram_data_valid = bool_var "ram_data_valid" in
  Ila.make ~name:"RAM-PORT"
    ~inputs:
      [
        ("ram_req", Sort.bool);
        ("ram_addr_in", Sort.bv 8);
        ("ram_data_valid", Sort.bool);
        ("ram_data_in", Sort.bv 8);
      ]
    ~states:
      [
        Ila.state "ram_addr" (Sort.bv 8) ();
        Ila.state "ram_data" (Sort.bv 8) ();
        Ila.state "mem_wait" (Sort.bv 1) ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "RAM_REQ" ~decode:ram_req
          ~updates:
            [
              ("ram_addr", bv_var "ram_addr_in" 8);
              ("ram_data", bv_var "ram_data_in" 8);
              ("mem_wait", bv ~width:1 1);
            ]
          ();
        Ila.instr "RAM_RESP"
          ~decode:(not_ ram_req &&: ram_data_valid)
          ~updates:[ ("ram_data", bv_var "ram_data_in" 8) ]
          ();
        Ila.instr "RAM_IDLE"
          ~decode:(not_ ram_req &&: not_ ram_data_valid)
          ~updates:[ ("mem_wait", bv ~width:1 0) ]
          ();
      ]

(* "when both ports update mem_wait, an update to value 1 has higher
   priority than an update to value 0" — the paper's resolution rule *)
let rom_ram_port =
  match
    Compose.integrate ~name:"ROM-RAM-PORT"
      ~resolve:(Compose.Resolve.priority_value (Value.of_int ~width:1 1))
      [ rom_port; ram_port ]
  with
  | Ok ila -> ila
  | Error gaps ->
    invalid_arg
      (Printf.sprintf "mem_iface integration left %d gaps" (List.length gaps))

let pc_port =
  let pc_cmd = bv_var "pc_cmd" 2 in
  let pc_imp = bool_var "pc_imp" in
  let pc = bv_var "pc" 16 in
  let instr_buff = bv_var "instr_buff" 16 in
  let output_updates =
    [
      ("imm_data0", extract ~hi:15 ~lo:8 instr_buff);
      ("imm_data1", extract ~hi:7 ~lo:0 instr_buff);
      ("operand0", bv_var "instr_in" 8);
      ("operand1", extract ~hi:7 ~lo:0 pc);
    ]
  in
  Ila.make ~name:"PC-PORT"
    ~inputs:
      [
        ("pc_cmd", Sort.bv 2);
        ("pc_imp", Sort.bool);
        ("pc_target", Sort.bv 16);
        ("instr_in", Sort.bv 8);
      ]
    ~states:
      [
        Ila.state "imm_data0" (Sort.bv 8) ();
        Ila.state "imm_data1" (Sort.bv 8) ();
        Ila.state "operand0" (Sort.bv 8) ();
        Ila.state "operand1" (Sort.bv 8) ();
        Ila.state "pc" (Sort.bv 16) ~kind:Ila.Internal ();
        Ila.state "instr_buff" (Sort.bv 16) ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "LOAD_INST" ~decode:(eq_int pc_cmd 0)
          ~updates:
            [
              ( "instr_buff",
                concat (extract ~hi:7 ~lo:0 instr_buff) (bv_var "instr_in" 8)
              );
            ]
          ();
        Ila.instr "PC_UPDATE" ~decode:(eq_int pc_cmd 1)
          ~updates:
            (("pc", ite pc_imp (bv_var "pc_target" 16) (add_int pc 1))
            :: output_updates)
          ();
        Ila.instr "PC_KEEP"
          ~decode:(bv ~width:2 2 <=: pc_cmd)
          ~updates:output_updates ();
      ]

(* The implementation: one module realizing all three ports, with a
   set/clear formulation of mem_wait and a non-architectural bus-phase
   counter. *)
let rtl =
  let rom_req = bool_var "rom_req" in
  let rom_data_valid = bool_var "rom_data_valid" in
  let ram_req = bool_var "ram_req" in
  let ram_data_valid = bool_var "ram_data_valid" in
  let pc_cmd = bv_var "pc_cmd" 2 in
  let pc_imp = bool_var "pc_imp" in
  let pc_q = bv_var "pc_q" 16 in
  let ibuf = bv_var "ibuf" 16 in
  let mem_wait_q = bv_var "mem_wait_q" 1 in
  Rtl.make ~name:"oc8051_memory_interface"
    ~inputs:
      [
        ("rom_req", Sort.bool);
        ("rom_addr_in", Sort.bv 16);
        ("rom_data_valid", Sort.bool);
        ("rom_data_in", Sort.bv 8);
        ("ram_req", Sort.bool);
        ("ram_addr_in", Sort.bv 8);
        ("ram_data_valid", Sort.bool);
        ("ram_data_in", Sort.bv 8);
        ("pc_cmd", Sort.bv 2);
        ("pc_imp", Sort.bool);
        ("pc_target", Sort.bv 16);
        ("instr_in", Sort.bv 8);
      ]
    ~wires:
      [
        ("wait_set", rom_req ||: ram_req);
        ( "wait_clr",
          not_ rom_req &&: not_ ram_req
          &&: not_ (rom_data_valid &&: ram_data_valid) );
        ("pc_step", eq_int pc_cmd 1);
        ("pc_out_en", not_ (eq_int pc_cmd 0));
      ]
    ~registers:
      [
        Rtl.reg "rom_addr_q" (Sort.bv 16)
          (ite rom_req (bv_var "rom_addr_in" 16) (bv_var "rom_addr_q" 16));
        Rtl.reg "rom_data_q" (Sort.bv 8)
          (ite
             (not_ rom_req &&: rom_data_valid)
             (bv_var "rom_data_in" 8) (bv_var "rom_data_q" 8));
        Rtl.reg "ram_addr_q" (Sort.bv 8)
          (ite ram_req (bv_var "ram_addr_in" 8) (bv_var "ram_addr_q" 8));
        Rtl.reg "ram_data_q" (Sort.bv 8)
          (ite
             (ram_req ||: ram_data_valid)
             (bv_var "ram_data_in" 8) (bv_var "ram_data_q" 8));
        Rtl.reg "mem_wait_q" (Sort.bv 1)
          (ite (bool_var "wait_set") (bv ~width:1 1)
             (ite (bool_var "wait_clr") (bv ~width:1 0) mem_wait_q));
        Rtl.reg "pc_q" (Sort.bv 16)
          (ite (bool_var "pc_step")
             (ite pc_imp (bv_var "pc_target" 16) (add_int pc_q 1))
             pc_q);
        Rtl.reg "ibuf" (Sort.bv 16)
          (ite (eq_int pc_cmd 0)
             (concat (extract ~hi:7 ~lo:0 ibuf) (bv_var "instr_in" 8))
             ibuf);
        Rtl.reg "imm0_q" (Sort.bv 8)
          (ite (bool_var "pc_out_en") (extract ~hi:15 ~lo:8 ibuf)
             (bv_var "imm0_q" 8));
        Rtl.reg "imm1_q" (Sort.bv 8)
          (ite (bool_var "pc_out_en") (extract ~hi:7 ~lo:0 ibuf)
             (bv_var "imm1_q" 8));
        Rtl.reg "op0_q" (Sort.bv 8)
          (ite (bool_var "pc_out_en") (bv_var "instr_in" 8) (bv_var "op0_q" 8));
        Rtl.reg "op1_q" (Sort.bv 8)
          (ite (bool_var "pc_out_en") (extract ~hi:7 ~lo:0 pc_q)
             (bv_var "op1_q" 8));
        (* non-architectural bus phase counter *)
        Rtl.reg "bus_phase" (Sort.bv 2) (add_int (bv_var "bus_phase" 2) 1);
      ]
    ~outputs:
      [ "rom_addr_q"; "rom_data_q"; "ram_addr_q"; "ram_data_q"; "imm0_q" ]

let refmap_for rtl port =
  match port with
  | "ROM-RAM-PORT" ->
    Refmap.make ~ila:rom_ram_port ~rtl
      ~state_map:
        [
          ("rom_addr", bv_var "rom_addr_q" 16);
          ("rom_data", bv_var "rom_data_q" 8);
          ("ram_addr", bv_var "ram_addr_q" 8);
          ("ram_data", bv_var "ram_data_q" 8);
          ("mem_wait", bv_var "mem_wait_q" 1);
        ]
      ~interface_map:
        [
          ("rom_req", bool_var "rom_req");
          ("rom_addr_in", bv_var "rom_addr_in" 16);
          ("rom_data_valid", bool_var "rom_data_valid");
          ("rom_data_in", bv_var "rom_data_in" 8);
          ("ram_req", bool_var "ram_req");
          ("ram_addr_in", bv_var "ram_addr_in" 8);
          ("ram_data_valid", bool_var "ram_data_valid");
          ("ram_data_in", bv_var "ram_data_in" 8);
        ]
      ~instruction_maps:
        (List.map
           (fun (i : Ila.instruction) ->
             Refmap.imap i.Ila.instr_name (Refmap.After_cycles 1))
           rom_ram_port.Ila.instructions)
      ()
  | "PC-PORT" ->
    Refmap.make ~ila:pc_port ~rtl
      ~state_map:
        [
          ("imm_data0", bv_var "imm0_q" 8);
          ("imm_data1", bv_var "imm1_q" 8);
          ("operand0", bv_var "op0_q" 8);
          ("operand1", bv_var "op1_q" 8);
          ("pc", bv_var "pc_q" 16);
          ("instr_buff", bv_var "ibuf" 16);
        ]
      ~interface_map:
        [
          ("pc_cmd", bv_var "pc_cmd" 2);
          ("pc_imp", bool_var "pc_imp");
          ("pc_target", bv_var "pc_target" 16);
          ("instr_in", bv_var "instr_in" 8);
        ]
      ~instruction_maps:
        [
          Refmap.imap "LOAD_INST" (Refmap.After_cycles 1);
          Refmap.imap "PC_UPDATE" (Refmap.After_cycles 1);
          Refmap.imap "PC_KEEP" (Refmap.After_cycles 1);
        ]
      ()
  | other -> invalid_arg ("Mem_iface_8051.refmap_for: unknown port " ^ other)

let design =
  {
    Design.name = "Mem. Interface";
    description =
      "8051 memory interface: ROM and RAM ports share mem_wait and are \
       integrated (priority: update to 1 wins); the PC port is independent";
    module_class = Design.Multi_port_shared;
    ports_before_integration = 3;
    module_ila =
      Compose.union ~name:"MEM-IFACE" [ rom_ram_port; pc_port ];
    rtl;
    refmap_for;
    bugs = [];
    coverage_assumptions = (fun _ -> []);
  }
