(** A tiny instruction-set simulator for the 8051-subset executed by
    the composed decoder + datapath core ({!Soc_top}).

    Written in plain integer arithmetic, independently of the
    expression language, so it can serve as a reference model for
    system-level cross-checking of the composed RTL. *)

type state = { acc : int; breg : int; carry : bool }

val reset : state

val opcode_of_word : int -> int
(** The ALU operation the decoder extracts from a program word:
    [{w[4], w[7:5]}]. *)

val steps_of_word : int -> int
(** Extra decode steps of a word ([w[1:0]]), i.e. the word occupies
    [1 + steps] decoder cycles. *)

val execute : state -> word:int -> src:int -> state
(** Architectural effect of one completed program word with the given
    source operand. *)

val run : (int * int) list -> state
(** Folds {!execute} over a program of (word, src) pairs from reset. *)

val pp : Format.formatter -> state -> unit
