let all =
  [
    Decoder_8051.design;
    Axi_slave.design;
    Axi_master.design;
    Datapath_8051.design;
    L2_cache.design;
    Mem_iface_8051.design;
    Store_buffer.design;
    Noc_router.design;
  ]

let quick =
  [
    Decoder_8051.design;
    Axi_slave.design;
    Axi_master.design;
    Datapath_8051.design_abstract;
    L2_cache.design;
    Mem_iface_8051.design;
    Store_buffer.design_abstract;
    Noc_router.design;
  ]

let extensions = [ Clock_gen.design; Uart_tx.design ]

let variants =
  all
  @ [ Datapath_8051.design_abstract; Store_buffer.design_abstract ]
  @ extensions

let find name =
  let norm s = String.lowercase_ascii (String.trim s) in
  List.find_opt (fun d -> norm d.Design.name = norm name) variants

let names = List.map (fun d -> d.Design.name) variants
