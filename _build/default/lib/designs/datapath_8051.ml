open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* Operation encodings of the ALU port. *)
let op_add = 0
let op_addc = 1
let op_sub = 2
let op_subb = 3
let op_inc = 4
let op_dec = 5
let op_mul = 6
let op_div = 7
let op_anl = 8
let op_orl = 9
let op_xrl = 10
let op_clr = 11
let op_cpl = 12
let op_rl = 13
let op_rr = 14
let op_swap = 15

(* Result and carry of each operation, shared between the specification
   and the (differently structured) implementation tests. *)
let alu_semantics ~acc ~carry ~src =
  let z9 e = zext e 9 in
  let cbit = ite carry (bv ~width:9 1) (bv ~width:9 0) in
  let sum = z9 acc +: z9 src in
  let sumc = z9 acc +: z9 src +: cbit in
  let diff = z9 acc -: z9 src in
  let diffb = z9 acc -: z9 src -: cbit in
  let prod = zext acc 16 *: zext src 16 in
  let low e = extract ~hi:7 ~lo:0 e in
  let bit8 e = bit e 8 in
  [
    (op_add, [ ("acc", low sum); ("carry", bit8 sum) ]);
    (op_addc, [ ("acc", low sumc); ("carry", bit8 sumc) ]);
    (op_sub, [ ("acc", low diff); ("carry", bit8 diff) ]);
    (op_subb, [ ("acc", low diffb); ("carry", bit8 diffb) ]);
    (op_inc, [ ("acc", add_int acc 1) ]);
    (op_dec, [ ("acc", sub_int acc 1) ]);
    ( op_mul,
      [
        ("acc", low prod);
        ("breg", extract ~hi:15 ~lo:8 prod);
        ("carry", ff);
      ] );
    ( op_div,
      [
        ("acc", udiv acc src);
        ("breg", urem acc src);
        ("carry", eq_int src 0);
      ] );
    (op_anl, [ ("acc", acc &: src) ]);
    (op_orl, [ ("acc", acc |: src) ]);
    (op_xrl, [ ("acc", acc ^: src) ]);
    (op_clr, [ ("acc", bv ~width:8 0); ("carry", ff) ]);
    (op_cpl, [ ("acc", bv_not acc) ]);
    ( op_rl,
      [ ("acc", concat (extract ~hi:6 ~lo:0 acc) (extract ~hi:7 ~lo:7 acc)) ]
    );
    ( op_rr,
      [ ("acc", concat (extract ~hi:0 ~lo:0 acc) (extract ~hi:7 ~lo:1 acc)) ]
    );
    ( op_swap,
      [ ("acc", concat (extract ~hi:3 ~lo:0 acc) (extract ~hi:7 ~lo:4 acc)) ]
    );
  ]

let op_name k =
  List.nth
    [
      "ADD"; "ADDC"; "SUB"; "SUBB"; "INC"; "DEC"; "MUL"; "DIV"; "ANL"; "ORL";
      "XRL"; "CLR"; "CPL"; "RL"; "RR"; "SWAP";
    ]
    k

let alu_port =
  let alu_en = bool_var "alu_en" in
  let alu_op_in = bv_var "alu_op_in" 4 in
  let acc = bv_var "acc" 8 in
  let breg = bv_var "breg" 8 in
  let carry = bool_var "carry" in
  let src = bv_var "src_in" 8 in
  let sems = alu_semantics ~acc ~carry ~src in
  ignore breg;
  Ila.make ~name:"ALU"
    ~inputs:
      [
        ("alu_en", Sort.bool); ("alu_op_in", Sort.bv 4); ("src_in", Sort.bv 8);
      ]
    ~states:
      [
        Ila.state "acc" (Sort.bv 8) ();
        Ila.state "breg" (Sort.bv 8) ();
        Ila.state "carry" Sort.bool ();
      ]
    ~instructions:
      (List.map
         (fun (k, updates) ->
           Ila.instr (op_name k)
             ~decode:(alu_en &&: eq_int alu_op_in k)
             ~updates ())
         sems)

let data_port ~ram_addr_width =
  let d_en = bool_var "d_en" in
  let d_wr = bool_var "d_wr" in
  let d_sfr = bool_var "d_sfr" in
  let d_addr = bv_var "d_addr" ram_addr_width in
  let d_sfr_addr = bv_var "d_sfr_addr" 3 in
  let d_data = bv_var "d_data" 8 in
  let ram = mem_var "ram" ~addr_width:ram_addr_width ~data_width:8 in
  let sfr = mem_var "sfr" ~addr_width:3 ~data_width:8 in
  Ila.make ~name:"DATA"
    ~inputs:
      [
        ("d_en", Sort.bool);
        ("d_wr", Sort.bool);
        ("d_sfr", Sort.bool);
        ("d_addr", Sort.bv ram_addr_width);
        ("d_sfr_addr", Sort.bv 3);
        ("d_data", Sort.bv 8);
      ]
    ~states:
      [
        Ila.state "ram"
          (Sort.mem ~addr_width:ram_addr_width ~data_width:8)
          ~kind:Ila.Internal ();
        Ila.state "sfr" (Sort.mem ~addr_width:3 ~data_width:8)
          ~kind:Ila.Internal ();
        Ila.state "rd_data" (Sort.bv 8) ();
      ]
    ~instructions:
      [
        Ila.instr "RAM_WR"
          ~decode:(d_en &&: d_wr &&: not_ d_sfr)
          ~updates:[ ("ram", write ram d_addr d_data) ]
          ();
        Ila.instr "RAM_RD"
          ~decode:(d_en &&: not_ d_wr &&: not_ d_sfr)
          ~updates:[ ("rd_data", read ram d_addr) ]
          ();
        Ila.instr "SFR_WR"
          ~decode:(d_en &&: d_wr &&: d_sfr)
          ~updates:[ ("sfr", write sfr d_sfr_addr d_data) ]
          ();
        Ila.instr "SFR_RD"
          ~decode:(d_en &&: not_ d_wr &&: d_sfr)
          ~updates:[ ("rd_data", read sfr d_sfr_addr) ]
          ();
      ]

(* The implementation: the ALU result is produced by a shared
   result/carry network selected by the operation code, rather than one
   mux per architectural effect.  The internal RAM write port is
   *staged*: a write is latched into a staging register and committed to
   the array one cycle later, with a combinational bypass so reads see
   the pending store.  The architectural RAM is therefore the array
   with the pending store applied — a genuinely different memory
   micro-architecture from the specification's direct-write array, which
   is what makes the verification cost scale with the RAM size (the
   paper's 256 B vs 16 B ablation). *)
let rtl ~ram_addr_width =
  let alu_en = bool_var "alu_en" in
  let alu_op_in = bv_var "alu_op_in" 4 in
  let acc = bv_var "acc_q" 8 in
  let breg = bv_var "b_q" 8 in
  let carry = bool_var "cy_q" in
  let src = bv_var "src_in" 8 in
  let d_en = bool_var "d_en" in
  let d_wr = bool_var "d_wr" in
  let d_sfr = bool_var "d_sfr" in
  let d_addr = bv_var "d_addr" ram_addr_width in
  let d_sfr_addr = bv_var "d_sfr_addr" 3 in
  let d_data = bv_var "d_data" 8 in
  let ram = mem_var "ram_q" ~addr_width:ram_addr_width ~data_width:8 in
  let sfr = mem_var "sfr_q" ~addr_width:3 ~data_width:8 in
  let sems = alu_semantics ~acc ~carry ~src in
  let field name default =
    (* the value a state takes under each op, as one selector mux *)
    switch alu_op_in ~default
      (List.filter_map
         (fun (k, updates) ->
           Option.map (fun e -> (k, e)) (List.assoc_opt name updates))
         sems)
  in
  Rtl.make ~name:"oc8051_alu_datapath"
    ~inputs:
      [
        ("alu_en", Sort.bool);
        ("alu_op_in", Sort.bv 4);
        ("src_in", Sort.bv 8);
        ("d_en", Sort.bool);
        ("d_wr", Sort.bool);
        ("d_sfr", Sort.bool);
        ("d_addr", Sort.bv ram_addr_width);
        ("d_sfr_addr", Sort.bv 3);
        ("d_data", Sort.bv 8);
      ]
    ~wires:
      [
        ("acc_next", field "acc" acc);
        ("b_next", field "breg" breg);
        ("cy_next", field "carry" carry);
        ("ram_we", d_en &&: d_wr &&: not_ d_sfr);
        ("sfr_we", d_en &&: d_wr &&: d_sfr);
        ("any_rd", d_en &&: not_ d_wr);
        ( "ram_bypass",
          (* a read sees the staged store when the address matches *)
          ite
            (bool_var "wpend_q" &&: eq (bv_var "waddr_q" ram_addr_width) d_addr)
            (bv_var "wdata_q" 8)
            (read ram d_addr) );
        ( "rd_mux",
          ite d_sfr (read sfr d_sfr_addr) (bv_var "ram_bypass" 8) );
      ]
    ~registers:
      [
        Rtl.reg "acc_q" (Sort.bv 8) (ite alu_en (bv_var "acc_next" 8) acc);
        Rtl.reg "b_q" (Sort.bv 8) (ite alu_en (bv_var "b_next" 8) breg);
        Rtl.reg "cy_q" Sort.bool (ite alu_en (bool_var "cy_next") carry);
        (* staged write port: commit last cycle's store, stage this one *)
        Rtl.reg "ram_q"
          (Sort.mem ~addr_width:ram_addr_width ~data_width:8)
          (ite (bool_var "wpend_q")
             (write ram (bv_var "waddr_q" ram_addr_width) (bv_var "wdata_q" 8))
             ram);
        Rtl.reg "wpend_q" Sort.bool (bool_var "ram_we");
        Rtl.reg "waddr_q" (Sort.bv ram_addr_width)
          (ite (bool_var "ram_we") d_addr (bv_var "waddr_q" ram_addr_width));
        Rtl.reg "wdata_q" (Sort.bv 8)
          (ite (bool_var "ram_we") d_data (bv_var "wdata_q" 8));
        Rtl.reg "sfr_q" (Sort.mem ~addr_width:3 ~data_width:8)
          (ite (bool_var "sfr_we") (write sfr d_sfr_addr d_data) sfr);
        Rtl.reg "rd_q" (Sort.bv 8)
          (ite (bool_var "any_rd") (bv_var "rd_mux" 8) (bv_var "rd_q" 8));
        (* implementation detail: last executed opcode, for debug *)
        Rtl.reg "last_op" (Sort.bv 4)
          (ite alu_en alu_op_in (bv_var "last_op" 4));
      ]
    ~outputs:[ "acc_q"; "b_q"; "cy_q"; "rd_q" ]

let refmap_for ~ram_addr_width rtl port =
  match port with
  | "ALU" ->
    Refmap.make ~ila:alu_port ~rtl
      ~state_map:
        [
          ("acc", bv_var "acc_q" 8);
          ("breg", bv_var "b_q" 8);
          ("carry", bool_var "cy_q");
        ]
      ~interface_map:
        [
          ("alu_en", bool_var "alu_en");
          ("alu_op_in", bv_var "alu_op_in" 4);
          ("src_in", bv_var "src_in" 8);
        ]
      ~instruction_maps:
        (List.init 16 (fun k -> Refmap.imap (op_name k) (Refmap.After_cycles 1)))
      ()
  | "DATA" ->
    Refmap.make ~ila:(data_port ~ram_addr_width) ~rtl
      ~state_map:
        [
          (* the architectural RAM is the array with the staged store
             applied *)
          ( "ram",
            ite (bool_var "wpend_q")
              (write
                 (mem_var "ram_q" ~addr_width:ram_addr_width ~data_width:8)
                 (bv_var "waddr_q" ram_addr_width)
                 (bv_var "wdata_q" 8))
              (mem_var "ram_q" ~addr_width:ram_addr_width ~data_width:8) );
          ("sfr", mem_var "sfr_q" ~addr_width:3 ~data_width:8);
          ("rd_data", bv_var "rd_q" 8);
        ]
      ~interface_map:
        [
          ("d_en", bool_var "d_en");
          ("d_wr", bool_var "d_wr");
          ("d_sfr", bool_var "d_sfr");
          ("d_addr", bv_var "d_addr" ram_addr_width);
          ("d_sfr_addr", bv_var "d_sfr_addr" 3);
          ("d_data", bv_var "d_data" 8);
        ]
      ~instruction_maps:
        (List.map
           (fun n -> Refmap.imap n (Refmap.After_cycles 1))
           [ "RAM_WR"; "RAM_RD"; "SFR_WR"; "SFR_RD" ])
      ()
  | other -> invalid_arg ("Datapath_8051.refmap_for: unknown port " ^ other)

let make_design ~ram_addr_width =
  let rtl = rtl ~ram_addr_width in
  let suffix =
    if ram_addr_width = 8 then ""
    else Printf.sprintf " (%d B RAM)" (1 lsl ram_addr_width)
  in
  {
    Design.name = "Datapath" ^ suffix;
    description =
      "8051 datapath: 16-instruction ALU port plus 4-instruction internal \
       RAM / SFR data port";
    module_class = Design.Multi_port_independent;
    ports_before_integration = 2;
    module_ila =
      Compose.union ~name:"DATAPATH"
        [ alu_port; data_port ~ram_addr_width ];
    rtl;
    refmap_for = refmap_for ~ram_addr_width;
    bugs = [];
    coverage_assumptions =
      (function
      | "ALU" -> [ bool_var "alu_en" ]
      | "DATA" -> [ bool_var "d_en" ]
      | _ -> []);
  }

let design = make_design ~ram_addr_width:8
let design_abstract = make_design ~ram_addr_width:4
