open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* Cache geometry: 16 sets, direct-mapped; address = {tag[1:0], index[3:0]};
   line = 16 bits.  Line states: 0 invalid, 1 shared/clean, 3 modified. *)

let index_of addr = extract ~hi:3 ~lo:0 addr
let tag_of addr = extract ~hi:5 ~lo:4 addr

(* NoC message types handled by PIPE2. *)
let msg_fill = 0
let msg_inv = 1
let msg_rd_fwd = 2
let msg_wr_upd = 3
let msg_wb_ack = 4
let msg_nop = 5

let pipe1_port =
  let p1_valid = bool_var "p1_valid" in
  let p1_type = bool_var "p1_type" in
  let p1_addr = bv_var "p1_addr" 6 in
  let p1_data = bv_var "p1_data" 16 in
  let common =
    [
      ("mshr_valid", tt);
      ("mshr_addr", p1_addr);
      ("noc_req_valid", tt);
      ("noc_req_addr", p1_addr);
    ]
  in
  Ila.make ~name:"PIPE1"
    ~inputs:
      [
        ("p1_valid", Sort.bool);
        ("p1_type", Sort.bool);
        ("p1_addr", Sort.bv 6);
        ("p1_data", Sort.bv 16);
      ]
    ~states:
      [
        Ila.state "mshr_valid" Sort.bool ~kind:Ila.Internal ();
        Ila.state "mshr_addr" (Sort.bv 6) ~kind:Ila.Internal ();
        Ila.state "mshr_is_store" Sort.bool ~kind:Ila.Internal ();
        Ila.state "mshr_data" (Sort.bv 16) ~kind:Ila.Internal ();
        Ila.state "noc_req_valid" Sort.bool ();
        Ila.state "noc_req_addr" (Sort.bv 6) ();
        Ila.state "noc_req_type" Sort.bool ();
      ]
    ~instructions:
      [
        Ila.instr "P1_LOAD_MISS"
          ~decode:(p1_valid &&: not_ p1_type)
          ~updates:
            (("mshr_is_store", ff) :: ("noc_req_type", ff) :: common)
          ();
        Ila.instr "P1_STORE_MISS"
          ~decode:(p1_valid &&: p1_type)
          ~updates:
            (("mshr_is_store", tt)
            :: ("noc_req_type", tt)
            :: ("mshr_data", p1_data)
            :: common)
          ();
      ]

let pipe2_port =
  let p2_valid = bool_var "p2_valid" in
  let p2_type = bv_var "p2_type" 3 in
  let p2_addr = bv_var "p2_addr" 6 in
  let p2_data = bv_var "p2_data" 16 in
  let data_array = mem_var "data_array" ~addr_width:4 ~data_width:16 in
  let tag_array = mem_var "tag_array" ~addr_width:4 ~data_width:2 in
  let state_array = mem_var "state_array" ~addr_width:4 ~data_width:2 in
  let idx = index_of p2_addr in
  let dec k = p2_valid &&: eq_int p2_type k in
  Ila.make ~name:"PIPE2"
    ~inputs:
      [
        ("p2_valid", Sort.bool);
        ("p2_type", Sort.bv 3);
        ("p2_addr", Sort.bv 6);
        ("p2_data", Sort.bv 16);
      ]
    ~states:
      [
        Ila.state "data_array" (Sort.mem ~addr_width:4 ~data_width:16)
          ~kind:Ila.Internal ();
        Ila.state "tag_array" (Sort.mem ~addr_width:4 ~data_width:2)
          ~kind:Ila.Internal ();
        Ila.state "state_array" (Sort.mem ~addr_width:4 ~data_width:2)
          ~kind:Ila.Internal ();
        Ila.state "resp_valid" Sort.bool ();
        Ila.state "resp_data" (Sort.bv 16) ();
      ]
    ~instructions:
      [
        Ila.instr "MSG_FILL" ~decode:(dec msg_fill)
          ~updates:
            [
              ("data_array", write data_array idx p2_data);
              ("tag_array", write tag_array idx (tag_of p2_addr));
              ("state_array", write state_array idx (bv ~width:2 1));
              ("resp_valid", tt);
              ("resp_data", p2_data);
            ]
          ();
        Ila.instr "MSG_INV" ~decode:(dec msg_inv)
          ~updates:
            [
              ("state_array", write state_array idx (bv ~width:2 0));
              ("resp_valid", tt);
              ("resp_data", read data_array idx);
            ]
          ();
        Ila.instr "MSG_RD_FWD" ~decode:(dec msg_rd_fwd)
          ~updates:
            [ ("resp_valid", tt); ("resp_data", read data_array idx) ]
          ();
        Ila.instr "MSG_WR_UPD" ~decode:(dec msg_wr_upd)
          ~updates:
            [
              (* partial write: merge the set bits into the old line *)
              ("data_array", write data_array idx (read data_array idx |: p2_data));
              ("state_array", write state_array idx (bv ~width:2 3));
              ("resp_valid", ff);
            ]
          ();
        Ila.instr "MSG_WB_ACK" ~decode:(dec msg_wb_ack)
          ~updates:
            [
              ("state_array", write state_array idx (bv ~width:2 1));
              ("resp_valid", ff);
            ]
          ();
        Ila.instr "MSG_NOP" ~decode:(dec msg_nop)
          ~updates:[ ("resp_valid", ff) ]
          ();
      ]

(* The implementation.

   PIPE1 is three stages deep: stage 1 latches the request, stage 2
   performs the (abstracted) tag lookup, stage 3 allocates the MSHR and
   issues the NoC request.  Stage occupancy lives in msg_flag_1..3; the
   architectural commit must be gated by msg_flag_3.  The buggy variant
   gates it with msg_flag_2 — the informal document's typo — so the
   stage-3 registers are committed one cycle before the travelling
   request reaches them.

   PIPE2 is two stages: stage 1 latches the message and reads the old
   line, stage 2 merges and writes back. *)
let make_rtl ~buggy name =
  let p1_valid = bool_var "p1_valid" in
  let p1_type = bool_var "p1_type" in
  let p1_addr = bv_var "p1_addr" 6 in
  let p1_data = bv_var "p1_data" 16 in
  let p2_valid = bool_var "p2_valid" in
  let p2_type = bv_var "p2_type" 3 in
  let p2_addr = bv_var "p2_addr" 6 in
  let p2_data = bv_var "p2_data" 16 in
  let data_array = mem_var "data_q" ~addr_width:4 ~data_width:16 in
  let tag_array = mem_var "tag_q" ~addr_width:4 ~data_width:2 in
  let state_array = mem_var "state_q" ~addr_width:4 ~data_width:2 in
  let commit_flag = if buggy then "msg_flag_2" else "msg_flag_3" in
  let p1_commit = bool_var commit_flag in
  let hold_unless c next cur = ite c next cur in
  (* stage-2 message registers of PIPE2 *)
  let m1_valid = bool_var "m1_valid" in
  let m1_type = bv_var "m1_type" 3 in
  let m1_addr = bv_var "m1_addr" 6 in
  let m1_data = bv_var "m1_data" 16 in
  let m1_lookup = bv_var "m1_lookup" 16 in
  let m1_idx = index_of m1_addr in
  let m1_is k = m1_valid &&: eq_int m1_type k in
  Rtl.make ~name
    ~inputs:
      [
        ("p1_valid", Sort.bool);
        ("p1_type", Sort.bool);
        ("p1_addr", Sort.bv 6);
        ("p1_data", Sort.bv 16);
        ("p2_valid", Sort.bool);
        ("p2_type", Sort.bv 3);
        ("p2_addr", Sort.bv 6);
        ("p2_data", Sort.bv 16);
      ]
    ~wires:
      [
        (* PIPE2 write-back values computed at stage 2 *)
        ("wb_fill", m1_is msg_fill);
        ("wb_upd", m1_is msg_wr_upd);
        ("merged_line", m1_lookup |: m1_data);
      ]
    ~registers:
      [
        (* ---- PIPE1: three-stage pipeline ---- *)
        Rtl.reg "msg_flag_1" Sort.bool p1_valid;
        Rtl.reg "s1_type" Sort.bool (hold_unless p1_valid p1_type (bool_var "s1_type"));
        Rtl.reg "s1_addr" (Sort.bv 6) (hold_unless p1_valid p1_addr (bv_var "s1_addr" 6));
        Rtl.reg "s1_data" (Sort.bv 16) (hold_unless p1_valid p1_data (bv_var "s1_data" 16));
        Rtl.reg "msg_flag_2" Sort.bool (bool_var "msg_flag_1");
        Rtl.reg "s2_type" Sort.bool (bool_var "s1_type");
        Rtl.reg "s2_addr" (Sort.bv 6) (bv_var "s1_addr" 6);
        Rtl.reg "s2_data" (Sort.bv 16) (bv_var "s1_data" 16);
        Rtl.reg "msg_flag_3" Sort.bool (bool_var "msg_flag_2");
        Rtl.reg "s3_type" Sort.bool (bool_var "s2_type");
        Rtl.reg "s3_addr" (Sort.bv 6) (bv_var "s2_addr" 6);
        Rtl.reg "s3_data" (Sort.bv 16) (bv_var "s2_data" 16);
        Rtl.reg "mshr_valid_q" Sort.bool
          (ite p1_commit tt (bool_var "mshr_valid_q"));
        Rtl.reg "mshr_addr_q" (Sort.bv 6)
          (ite p1_commit (bv_var "s3_addr" 6) (bv_var "mshr_addr_q" 6));
        Rtl.reg "mshr_store_q" Sort.bool
          (ite p1_commit (bool_var "s3_type") (bool_var "mshr_store_q"));
        Rtl.reg "mshr_data_q" (Sort.bv 16)
          (ite
             (p1_commit &&: bool_var "s3_type")
             (bv_var "s3_data" 16) (bv_var "mshr_data_q" 16));
        Rtl.reg "noc_valid_q" Sort.bool
          (ite p1_commit tt (bool_var "noc_valid_q"));
        Rtl.reg "noc_addr_q" (Sort.bv 6)
          (ite p1_commit (bv_var "s3_addr" 6) (bv_var "noc_addr_q" 6));
        Rtl.reg "noc_type_q" Sort.bool
          (ite p1_commit (bool_var "s3_type") (bool_var "noc_type_q"));
        (* ---- PIPE2: two-stage pipeline ---- *)
        Rtl.reg "m1_valid" Sort.bool p2_valid;
        Rtl.reg "m1_type" (Sort.bv 3) (hold_unless p2_valid p2_type m1_type);
        Rtl.reg "m1_addr" (Sort.bv 6) (hold_unless p2_valid p2_addr m1_addr);
        Rtl.reg "m1_data" (Sort.bv 16) (hold_unless p2_valid p2_data m1_data);
        Rtl.reg "m1_lookup" (Sort.bv 16)
          (hold_unless p2_valid (read data_array (index_of p2_addr)) m1_lookup);
        Rtl.reg "data_q" (Sort.mem ~addr_width:4 ~data_width:16)
          (ite (bool_var "wb_fill")
             (write data_array m1_idx m1_data)
             (ite (bool_var "wb_upd")
                (write data_array m1_idx (bv_var "merged_line" 16))
                data_array));
        Rtl.reg "tag_q" (Sort.mem ~addr_width:4 ~data_width:2)
          (ite (bool_var "wb_fill")
             (write tag_array m1_idx (tag_of m1_addr))
             tag_array);
        Rtl.reg "state_q" (Sort.mem ~addr_width:4 ~data_width:2)
          (ite (bool_var "wb_fill")
             (write state_array m1_idx (bv ~width:2 1))
             (ite (m1_is msg_inv)
                (write state_array m1_idx (bv ~width:2 0))
                (ite (bool_var "wb_upd")
                   (write state_array m1_idx (bv ~width:2 3))
                   (ite (m1_is msg_wb_ack)
                      (write state_array m1_idx (bv ~width:2 1))
                      state_array))));
        Rtl.reg "resp_valid_q" Sort.bool
          (ite m1_valid
             (eq_int m1_type msg_fill
             ||: eq_int m1_type msg_inv
             ||: eq_int m1_type msg_rd_fwd)
             (bool_var "resp_valid_q"));
        Rtl.reg "resp_data_q" (Sort.bv 16)
          (ite (m1_is msg_fill) m1_data
             (ite
                (m1_is msg_inv ||: m1_is msg_rd_fwd)
                m1_lookup (bv_var "resp_data_q" 16)));
      ]
    ~outputs:[ "noc_valid_q"; "noc_addr_q"; "noc_type_q"; "resp_valid_q"; "resp_data_q" ]

let rtl = make_rtl ~buggy:false "openpiton_l2"
let rtl_buggy = make_rtl ~buggy:true "openpiton_l2_buggy"

let refmap_for rtl port =
  match port with
  | "PIPE1" ->
    let pipe_empty =
      and_list
        [
          not_ (bool_var "msg_flag_1");
          not_ (bool_var "msg_flag_2");
          not_ (bool_var "msg_flag_3");
        ]
    in
    Refmap.make ~ila:pipe1_port ~rtl
      ~state_map:
        [
          ("mshr_valid", bool_var "mshr_valid_q");
          ("mshr_addr", bv_var "mshr_addr_q" 6);
          ("mshr_is_store", bool_var "mshr_store_q");
          ("mshr_data", bv_var "mshr_data_q" 16);
          ("noc_req_valid", bool_var "noc_valid_q");
          ("noc_req_addr", bv_var "noc_addr_q" 6);
          ("noc_req_type", bool_var "noc_type_q");
        ]
      ~interface_map:
        [
          ("p1_valid", bool_var "p1_valid");
          ("p1_type", bool_var "p1_type");
          ("p1_addr", bv_var "p1_addr" 6);
          ("p1_data", bv_var "p1_data" 16);
        ]
      ~instruction_maps:
        [
          Refmap.imap "P1_LOAD_MISS" ~start:pipe_empty (Refmap.After_cycles 4);
          Refmap.imap "P1_STORE_MISS" ~start:pipe_empty (Refmap.After_cycles 4);
        ]
      ~step_assumptions:[ not_ (bool_var "p1_valid") ]
      ()
  | "PIPE2" ->
    Refmap.make ~ila:pipe2_port ~rtl
      ~state_map:
        [
          ("data_array", mem_var "data_q" ~addr_width:4 ~data_width:16);
          ("tag_array", mem_var "tag_q" ~addr_width:4 ~data_width:2);
          ("state_array", mem_var "state_q" ~addr_width:4 ~data_width:2);
          ("resp_valid", bool_var "resp_valid_q");
          ("resp_data", bv_var "resp_data_q" 16);
        ]
      ~interface_map:
        [
          ("p2_valid", bool_var "p2_valid");
          ("p2_type", bv_var "p2_type" 3);
          ("p2_addr", bv_var "p2_addr" 6);
          ("p2_data", bv_var "p2_data" 16);
        ]
      ~instruction_maps:
        (List.map
           (fun n ->
             Refmap.imap n
               ~start:(not_ (bool_var "m1_valid"))
               (Refmap.After_cycles 2))
           [ "MSG_FILL"; "MSG_INV"; "MSG_RD_FWD"; "MSG_WR_UPD"; "MSG_WB_ACK"; "MSG_NOP" ])
      ~step_assumptions:[ not_ (bool_var "p2_valid") ]
      ()
  | other -> invalid_arg ("L2_cache.refmap_for: unknown port " ^ other)

let design =
  {
    Design.name = "L2 Cache";
    description =
      "OpenPiton L2 cache: dual pipelines as independent ports (PIPE1: L1.5 \
       misses through a 3-stage pipeline; PIPE2: six NoC message types \
       through a 2-stage lookup/merge pipeline)";
    module_class = Design.Multi_port_independent;
    ports_before_integration = 2;
    module_ila = Compose.union ~name:"L2" [ pipe1_port; pipe2_port ];
    rtl;
    refmap_for;
    bugs =
      [
        {
          Design.bug_label = "msg_flag";
          bug_description =
            "typo in the informal document: the PIPE1 commit is gated by the \
             pipeline register msg_flag_2 where msg_flag_3 is needed (the \
             bug reported in the paper, Sec. V-B4)";
          buggy_rtl = rtl_buggy;
        };
      ];
    coverage_assumptions =
      (function
      | "PIPE1" -> [ bool_var "p1_valid" ]
      | "PIPE2" ->
        [ bool_var "p2_valid"; bv_var "p2_type" 3 <=: bv ~width:3 5 ]
      | _ -> []);
  }
