(** Extension case study: a UART transmitter — a single-command-
    interface module whose one instruction takes a {e data-dependent}
    number of cycles, verified with a [Within] finish condition (the
    bounded-liveness form of the refinement check).

    The SEND command latches a byte; the implementation then shifts out
    start bit, eight data bits and a stop bit at one bit per
    [cycles_per_bit] clock cycles.  The ILA's SEND instruction captures
    the architectural effect (byte latched, [tx_busy] raised and —
    eventually — released with [tx_done]); its finish condition is "the
    first cycle where the shifter goes idle again", bounded by the
    frame length. *)

val cycles_per_bit : int
val frame_cycles : int  (** 10 bits x cycles_per_bit *)

val ila : Ilv_core.Ila.t
val rtl : Ilv_rtl.Rtl.t
val design : Design.t
