(** Case study: the 8051 datapath (Sec. V-B3 of the paper; multiple
    command interfaces without shared state).

    Two independent ports:

    - ALU-port: 16 instructions (ADD, ADDC, SUB, SUBB, INC, DEC, MUL,
      DIV, ANL, ORL, XRL, CLR, CPL, RL, RR, SWAP) selected by
      [alu_op_in] when [alu_en] is raised, updating the accumulator, the
      B register and the carry flag;
    - data-port: 4 instructions accessing the internal RAM and the
      special function registers (RAM_WR/RAM_RD/SFR_WR/SFR_RD).

    The internal RAM size is a parameter: the paper verifies the full
    256-byte RAM in 176 s and, after abstracting it to 16 bytes
    (standard small-memory modeling), in 9.5 s.  [design] uses the full
    RAM; [design_abstract] the 16-byte abstraction — the benchmark
    harness reproduces the ablation with both. *)

val rtl : ram_addr_width:int -> Ilv_rtl.Rtl.t
(** The implementation alone (used by {!Soc_top} to build the composed
    core). *)

val alu_port : Ilv_core.Ila.t

val make_design : ram_addr_width:int -> Design.t
val design : Design.t  (** 256-byte internal RAM *)

val design_abstract : Design.t  (** 16-byte abstracted RAM *)
