open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

let divisor = 12
let width = 4

let ila =
  let counter = bv_var "counter" width in
  let phase = bool_var "phase" in
  let wrap = eq_int counter (divisor - 1) in
  Ila.zero_command ~name:"CLKGEN"
    ~states:
      [
        Ila.state "counter" (Sort.bv width) ~kind:Ila.Internal ();
        Ila.state "tick" Sort.bool ();
        Ila.state "phase" Sort.bool ();
      ]
    ~updates:
      [
        ("counter", ite wrap (bv ~width 0) (add_int counter 1));
        ("tick", wrap);
        ("phase", ite wrap (not_ phase) phase);
      ]

(* The implementation counts down from divisor-1 to 0. *)
let rtl =
  let down = bv_var "down_q" width in
  let at_zero = eq_int down 0 in
  Rtl.make ~name:"baud_gen" ~inputs:[]
    ~wires:[ ("wrap", at_zero) ]
    ~registers:
      [
        Rtl.reg "down_q" (Sort.bv width)
          ~init:(Value.of_int ~width (divisor - 1))
          (ite at_zero (bv ~width (divisor - 1)) (sub_int down 1));
        Rtl.reg "tick_q" Sort.bool (bool_var "wrap");
        Rtl.reg "phase_q" Sort.bool
          (ite (bool_var "wrap") (not_ (bool_var "phase_q"))
             (bool_var "phase_q"));
      ]
    ~outputs:[ "tick_q"; "phase_q" ]

let refmap_for rtl port =
  if port <> "CLKGEN" then
    invalid_arg ("Clock_gen.refmap_for: unknown port " ^ port);
  let down = bv_var "down_q" width in
  Refmap.make ~ila ~rtl
    ~state_map:
      [
        (* up-counter recovered from the down-counter *)
        ("counter", bv ~width (divisor - 1) -: down);
        ("tick", bool_var "tick_q");
        ("phase", bool_var "phase_q");
      ]
    ~interface_map:[ ("power_on", tt) ]
    ~instruction_maps:[ Refmap.imap "START" (Refmap.After_cycles 1) ]
    ~invariants:
      [ (* the down counter never leaves [0, divisor-1] *)
        down <=: bv ~width (divisor - 1) ]
    ()

let design =
  {
    Design.name = "Clock Gen";
    description =
      "baud-rate generator with no command interface: a single power-on \
       START instruction (the paper's \"0\"-command class)";
    module_class = Design.Single_port;
    ports_before_integration = 1;
    module_ila = Compose.union ~name:"CLKGEN" [ ila ];
    rtl;
    refmap_for;
    bugs = [];
    coverage_assumptions = (fun _ -> [ bool_var "power_on" ]);
  }
