open Ilv_expr
open Ilv_rtl
open Ilv_core

type outcome =
  | Agree of { cycles : int; steps : int }
  | Diverged of { cycle : int; port : string; state : string; detail : string }

exception Stop of outcome

let random_value rng sort =
  match sort with
  | Sort.Bool -> Value.of_bool (Random.State.bool rng)
  | Sort.Bitvec w ->
    Value.of_bv (Bitvec.of_bits (List.init w (fun _ -> Random.State.bool rng)))
  | Sort.Mem { addr_width; data_width } ->
    Value.mem_const ~addr_width ~default:(Bitvec.zero data_width)

let owned_states (ila : Ila.t) =
  List.concat_map
    (fun (i : Ila.instruction) -> List.map fst i.Ila.updates)
    (Ila.leaf_instructions ila)
  |> List.sort_uniq String.compare

let run_rtl ?(cycles = 300) ~seed (d : Design.t) rtl =
  let rng = Random.State.make [| seed |] in
  let rtl_sim = Sim.create rtl in
  let steps = ref 0 in
  let ports =
    List.map
      (fun (port : Ila.t) ->
        let refmap = d.Design.refmap_for rtl port.Ila.name in
        (Ila_sim.create port, refmap, owned_states port))
      d.Design.module_ila.Module_ila.ports
  in
  let mapped env e = Eval.eval env e in
  let sync_all (ila_sim, (refmap : Refmap.t), _) =
    let env = Sim.registers_env rtl_sim in
    Ila_sim.set_state ila_sim
      (Eval.env_of_list
         (List.map (fun (s, e) -> (s, mapped env e)) refmap.Refmap.state_map))
  in
  List.iter sync_all ports;
  try
    for cycle = 1 to cycles do
      let inputs =
        List.map (fun (name, sort) -> (name, random_value rng sort)) rtl.Rtl.inputs
      in
      let input_env = Eval.env_of_list inputs in
      (* refresh read-only shared states from the RTL, then step with
         the mapped command *)
      let stepped =
        List.map
          (fun ((ila_sim, (refmap : Refmap.t), owned) as port) ->
            let env = Sim.registers_env rtl_sim in
            let refreshed =
              List.fold_left
                (fun acc (s, e) ->
                  if List.mem s owned then acc
                  else Eval.env_add s (mapped env e) acc)
                (Ila_sim.state_env ila_sim)
                refmap.Refmap.state_map
            in
            Ila_sim.set_state ila_sim refreshed;
            let command =
              List.map
                (fun (w, e) -> (w, Eval.eval input_env e))
                refmap.Refmap.interface_map
            in
            match Ila_sim.step ila_sim command with
            | Ila_sim.Stepped _ ->
              incr steps;
              (port, true)
            | Ila_sim.No_instruction -> (port, false)
            | Ila_sim.Ambiguous names ->
              raise
                (Stop
                   (Diverged
                      {
                        cycle;
                        port = (Ila_sim.ila ila_sim).Ila.name;
                        state = "-";
                        detail =
                          "ambiguous decode: " ^ String.concat ", " names;
                      })))
          ports
      in
      Sim.cycle rtl_sim inputs;
      let env = Sim.registers_env rtl_sim in
      List.iter
        (fun (((ila_sim, (refmap : Refmap.t), owned) as port), did_step) ->
          if did_step then
            List.iter
              (fun (s, e) ->
                if List.mem s owned then begin
                  let expected = Ila_sim.state ila_sim s in
                  let actual = mapped env e in
                  if not (Value.equal expected actual) then
                    raise
                      (Stop
                         (Diverged
                            {
                              cycle;
                              port = (Ila_sim.ila ila_sim).Ila.name;
                              state = s;
                              detail =
                                Printf.sprintf "ILA %s vs RTL %s"
                                  (Value.to_string expected)
                                  (Value.to_string actual);
                            }))
                end)
              refmap.Refmap.state_map
          else sync_all port)
        stepped
    done;
    Agree { cycles; steps = !steps }
  with Stop outcome -> outcome

let run ?cycles ~seed (d : Design.t) = run_rtl ?cycles ~seed d d.Design.rtl
