open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* An entry packs {addr[15:8], data[7:0]}. *)

let entries_var k = mem_var "entries" ~addr_width:k ~data_width:16

let not_empty k =
  let head = bv_var "head" k and tail = bv_var "tail" k in
  not_ (eq head tail &&: not_ (bool_var "full"))

let in_port ~depth_log2:k =
  let in_valid = bool_var "in_valid" in
  let in_addr = bv_var "in_addr" 8 in
  let in_data = bv_var "in_data" 8 in
  let head = bv_var "head" k in
  let tail = bv_var "tail" k in
  let full = bool_var "full" in
  Ila.make ~name:"IN"
    ~inputs:
      [ ("in_valid", Sort.bool); ("in_addr", Sort.bv 8); ("in_data", Sort.bv 8) ]
    ~states:
      [
        Ila.state "entries" (Sort.mem ~addr_width:k ~data_width:16)
          ~kind:Ila.Internal ();
        Ila.state "tail" (Sort.bv k) ~kind:Ila.Internal ();
        Ila.state "head" (Sort.bv k) ~kind:Ila.Internal ();
        Ila.state "full" Sort.bool ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "SB_PUSH"
          ~decode:(in_valid &&: not_ full)
          ~updates:
            [
              ("entries", write (entries_var k) tail (concat in_addr in_data));
              ("tail", add_int tail 1);
              ("full", eq (add_int tail 1) head);
            ]
          ();
        Ila.instr "SB_IN_IDLE" ~decode:(not_ in_valid ||: full) ~updates:[] ();
      ]

let out_port ~depth_log2:k =
  let out_ready = bool_var "out_ready" in
  let head = bv_var "head" k in
  let pop = out_ready &&: not_empty k in
  Ila.make ~name:"OUT"
    ~inputs:[ ("out_ready", Sort.bool) ]
    ~states:
      [
        Ila.state "entries" (Sort.mem ~addr_width:k ~data_width:16)
          ~kind:Ila.Internal ();
        Ila.state "tail" (Sort.bv k) ~kind:Ila.Internal ();
        Ila.state "head" (Sort.bv k) ~kind:Ila.Internal ();
        Ila.state "full" Sort.bool ~kind:Ila.Internal ();
        Ila.state "out_valid" Sort.bool ();
        Ila.state "out_entry" (Sort.bv 16) ();
      ]
    ~instructions:
      [
        Ila.instr "SB_POP" ~decode:pop
          ~updates:
            [
              ("head", add_int head 1);
              ("full", ff);
              ("out_entry", read (entries_var k) head);
              ("out_valid", tt);
            ]
          ();
        Ila.instr "SB_OUT_IDLE" ~decode:(not_ pop)
          ~updates:[ ("out_valid", ff) ]
          ();
      ]

(* A push and a pop in the same step keep the occupancy unchanged, so
   the buffer can only be full afterwards if it was full before — and
   SB_PUSH is refused at full, so the combined update is "not full".
   This is the informal spec's resolution of the conflicting [full]
   updates from the two ports. *)
let in_out_port ~depth_log2:k =
  let resolve (c : Compose.conflict) =
    if c.Compose.state = "full" then Some ff else None
  in
  match
    Compose.integrate ~name:"IN-OUT" ~resolve
      [ in_port ~depth_log2:k; out_port ~depth_log2:k ]
  with
  | Ok ila -> ila
  | Error gaps ->
    invalid_arg
      (Printf.sprintf "store buffer integration left %d gaps"
         (List.length gaps))

let load_port ~depth_log2:k =
  let ld_valid = bool_var "ld_valid" in
  let ld_idx = bv_var "ld_idx" k in
  Ila.make ~name:"LOAD"
    ~inputs:[ ("ld_valid", Sort.bool); ("ld_idx", Sort.bv k) ]
    ~states:
      [
        Ila.state "entries" (Sort.mem ~addr_width:k ~data_width:16)
          ~kind:Ila.Internal ();
        Ila.state "ld_data" (Sort.bv 16) ();
      ]
    ~instructions:
      [
        Ila.instr "SB_LOAD" ~decode:ld_valid
          ~updates:[ ("ld_data", read (entries_var k) ld_idx) ]
          ();
        Ila.instr "SB_LD_IDLE" ~decode:(not_ ld_valid) ~updates:[] ();
      ]

(* The implementation tracks occupancy with a counter; fullness is the
   derived fact count == depth.  The buggy variant "optimizes" pushes:
   it accepts a push at full when a pop frees the slot in the same
   cycle — but the specification refuses that push, so the buffer flags
   (tail) diverge exactly when both ports see traffic on a full
   buffer: the paper's bug. *)
let rtl ~buggy ~depth_log2:k name =
  let depth = 1 lsl k in
  let in_valid = bool_var "in_valid" in
  let in_addr = bv_var "in_addr" 8 in
  let in_data = bv_var "in_data" 8 in
  let out_ready = bool_var "out_ready" in
  let ld_valid = bool_var "ld_valid" in
  let ld_idx = bv_var "ld_idx" k in
  let mem = mem_var "sb_mem" ~addr_width:k ~data_width:16 in
  let head = bv_var "head_q" k in
  let tail = bv_var "tail_q" k in
  let count = bv_var "count_q" (k + 1) in
  let full_w = eq_int count depth in
  let empty_w = eq_int count 0 in
  let pop = bool_var "pop_w" in
  let push = bool_var "push_w" in
  let push_cond =
    if buggy then in_valid &&: (not_ full_w ||: (out_ready &&: not_ empty_w))
    else in_valid &&: not_ full_w
  in
  Rtl.make ~name
    ~inputs:
      [
        ("in_valid", Sort.bool);
        ("in_addr", Sort.bv 8);
        ("in_data", Sort.bv 8);
        ("out_ready", Sort.bool);
        ("ld_valid", Sort.bool);
        ("ld_idx", Sort.bv k);
      ]
    ~wires:
      [
        ("pop_w", out_ready &&: not_ empty_w);
        ("push_w", push_cond);
      ]
    ~registers:
      [
        Rtl.reg "sb_mem"
          (Sort.mem ~addr_width:k ~data_width:16)
          (ite push (write mem tail (concat in_addr in_data)) mem);
        Rtl.reg "tail_q" (Sort.bv k) (ite push (add_int tail 1) tail);
        Rtl.reg "head_q" (Sort.bv k) (ite pop (add_int head 1) head);
        Rtl.reg "count_q"
          (Sort.bv (k + 1))
          (ite (push &&: not_ pop) (add_int count 1)
             (ite (pop &&: not_ push) (sub_int count 1) count));
        Rtl.reg "out_q" (Sort.bv 16) (ite pop (read mem head) (bv_var "out_q" 16));
        Rtl.reg "out_v_q" Sort.bool pop;
        Rtl.reg "ld_q" (Sort.bv 16)
          (ite ld_valid (read mem ld_idx) (bv_var "ld_q" 16));
      ]
    ~outputs:[ "out_q"; "out_v_q"; "ld_q" ]

let refmap_for ~depth_log2:k rtl port =
  let depth = 1 lsl k in
  let count = bv_var "count_q" (k + 1) in
  let head = bv_var "head_q" k in
  let tail = bv_var "tail_q" k in
  let invariants =
    [
      (* occupancy never exceeds the depth, and its low bits always
         equal the pointer difference: the counter and the pointers
         agree *)
      count <=: bv ~width:(k + 1) depth;
      eq (extract ~hi:(k - 1) ~lo:0 count) (tail -: head);
    ]
  in
  match port with
  | "IN-OUT" ->
    let ila = in_out_port ~depth_log2:k in
    Refmap.make ~ila ~rtl
      ~state_map:
        [
          ("entries", mem_var "sb_mem" ~addr_width:k ~data_width:16);
          ("head", head);
          ("tail", tail);
          ("full", eq_int count depth);
          ("out_valid", bool_var "out_v_q");
          ("out_entry", bv_var "out_q" 16);
        ]
      ~interface_map:
        [
          ("in_valid", bool_var "in_valid");
          ("in_addr", bv_var "in_addr" 8);
          ("in_data", bv_var "in_data" 8);
          ("out_ready", bool_var "out_ready");
        ]
      ~instruction_maps:
        (List.map
           (fun (i : Ila.instruction) ->
             Refmap.imap i.Ila.instr_name (Refmap.After_cycles 1))
           ila.Ila.instructions)
      ~invariants ()
  | "LOAD" ->
    Refmap.make ~ila:(load_port ~depth_log2:k) ~rtl
      ~state_map:
        [
          ("entries", mem_var "sb_mem" ~addr_width:k ~data_width:16);
          ("ld_data", bv_var "ld_q" 16);
        ]
      ~interface_map:
        [ ("ld_valid", bool_var "ld_valid"); ("ld_idx", bv_var "ld_idx" k) ]
      ~instruction_maps:
        [
          Refmap.imap "SB_LOAD" (Refmap.After_cycles 1);
          Refmap.imap "SB_LD_IDLE" (Refmap.After_cycles 1);
        ]
      ()
  | other -> invalid_arg ("Store_buffer.refmap_for: unknown port " ^ other)

let make_design ~depth_log2:k =
  let suffix = if k = 6 then "" else Printf.sprintf " (%d entries)" (1 lsl k) in
  {
    Design.name = "Store Buffer" ^ suffix;
    description =
      "RISC-V core store buffer: in/out ports share the occupancy flags and \
       are integrated; the load port reads entries independently";
    module_class = Design.Multi_port_shared;
    ports_before_integration = 3;
    module_ila =
      Compose.union ~name:"STORE-BUFFER"
        [ in_out_port ~depth_log2:k; load_port ~depth_log2:k ];
    rtl = rtl ~buggy:false ~depth_log2:k "ridecore_store_buffer";
    refmap_for = refmap_for ~depth_log2:k;
    bugs =
      [
        {
          Design.bug_label = "full_flag";
          bug_description =
            "the buffer flags update incorrectly when there is traffic on \
             both the in-port and the out-port and the buffer is full (the \
             bug reported in the paper, Sec. V-C2)";
          buggy_rtl = rtl ~buggy:true ~depth_log2:k "ridecore_store_buffer_buggy";
        };
      ];
    coverage_assumptions = (fun _ -> []);
  }

let design = make_design ~depth_log2:6
let design_abstract = make_design ~depth_log2:4
