(** Random co-simulation of a design's RTL against its port-ILAs.

    Each cycle, random values are driven into every RTL input; each
    port-ILA receives the command mapped through its interface map and
    steps alongside the RTL.  After every architectural step, the
    refinement map must still relate the ILA state to the RTL state
    (for the states the port owns).  This validates models and maps by
    dynamic execution, independently of the SAT-based checker.

    Applicable to designs whose instructions retire in one cycle (all
    case studies except the pipelined L2 cache). *)

type outcome =
  | Agree of { cycles : int; steps : int }
      (** steps = architectural steps taken across all ports *)
  | Diverged of { cycle : int; port : string; state : string; detail : string }

val run : ?cycles:int -> seed:int -> Design.t -> outcome

val run_rtl :
  ?cycles:int -> seed:int -> Design.t -> Ilv_rtl.Rtl.t -> outcome
(** Co-simulate a specific RTL (e.g. a buggy variant) against the
    design's ILAs. *)
