open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* Beat presentation: INCR bursts pass the downstream fifo word
   through; FIXED bursts present it byte-swapped. *)
let beat burst fifo =
  ite burst fifo (concat (extract ~hi:7 ~lo:0 fifo) (extract ~hi:15 ~lo:8 fifo))

(* ---------------- READ port ---------------- *)

let read_port =
  let rd_addr_valid = bool_var "rd_addr_valid" in
  let rd_addr_in = bv_var "rd_addr_in" 8 in
  let rd_length_in = bv_var "rd_length_in" 4 in
  let rd_burst_in = bool_var "rd_burst_in" in
  let rd_data_ready = bool_var "rd_data_ready" in
  let rd_fifo_in = bv_var "rd_fifo_in" 16 in
  let tx_rd_active = bool_var "tx_rd_active" in
  let tx_rd_addr = bv_var "tx_rd_addr" 8 in
  let tx_rd_length = bv_var "tx_rd_length" 4 in
  let tx_rd_burst = bool_var "tx_rd_burst" in
  Ila.make ~name:"READ"
    ~inputs:
      [
        ("rd_addr_valid", Sort.bool);
        ("rd_addr_in", Sort.bv 8);
        ("rd_length_in", Sort.bv 4);
        ("rd_burst_in", Sort.bool);
        ("rd_data_ready", Sort.bool);
        ("rd_fifo_in", Sort.bv 16);
      ]
    ~states:
      [
        Ila.state "rd_addr_ready" Sort.bool ();
        Ila.state "rd_data" (Sort.bv 16) ();
        Ila.state "rd_data_valid" Sort.bool ();
        Ila.state "tx_rd_active" Sort.bool ~kind:Ila.Internal ();
        Ila.state "tx_rd_addr" (Sort.bv 8) ~kind:Ila.Internal ();
        Ila.state "tx_rd_length" (Sort.bv 4) ~kind:Ila.Internal ();
        Ila.state "tx_rd_burst" Sort.bool ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "RD_ADDR_WAIT"
          ~decode:(not_ tx_rd_active &&: not_ rd_addr_valid)
          ~updates:[ ("rd_addr_ready", tt); ("rd_data_valid", ff) ]
          ();
        Ila.instr "RD_ADDR_COMMIT"
          ~decode:(not_ tx_rd_active &&: rd_addr_valid)
          ~updates:
            [
              ("rd_addr_ready", ff);
              ("tx_rd_active", tt);
              ("tx_rd_addr", rd_addr_in);
              ("tx_rd_length", rd_length_in);
              ("tx_rd_burst", rd_burst_in);
              ("rd_data_valid", ff);
            ]
          ();
        Ila.instr "RD_DATA_PREPARE" ~parent:"RD_ADDR_COMMIT"
          ~decode:(tx_rd_active &&: not_ rd_data_ready)
          ~updates:
            [ ("rd_data", beat tx_rd_burst rd_fifo_in); ("rd_data_valid", tt) ]
          ();
        Ila.instr "RD_DATA_COMMIT" ~parent:"RD_ADDR_COMMIT"
          ~decode:(tx_rd_active &&: rd_data_ready)
          ~updates:
            [
              ("tx_rd_addr", ite tx_rd_burst (add_int tx_rd_addr 1) tx_rd_addr);
              ("tx_rd_length", sub_int tx_rd_length 1);
              ("tx_rd_active", not_ (eq_int tx_rd_length 1));
              ("rd_addr_ready", eq_int tx_rd_length 1);
              ("rd_data_valid", ff);
            ]
          ();
      ]

(* ---------------- WRITE port ---------------- *)

let write_port =
  let wr_addr_valid = bool_var "wr_addr_valid" in
  let wr_addr_in = bv_var "wr_addr_in" 8 in
  let wr_length_in = bv_var "wr_length_in" 4 in
  let wr_data_in = bv_var "wr_data_in" 16 in
  let wr_data_valid = bool_var "wr_data_valid" in
  let tx_wr_active = bool_var "tx_wr_active" in
  let tx_wr_addr = bv_var "tx_wr_addr" 8 in
  let tx_wr_length = bv_var "tx_wr_length" 4 in
  let pending = tx_wr_active &&: not_ (eq_int tx_wr_length 0) in
  let last = tx_wr_active &&: eq_int tx_wr_length 0 in
  Ila.make ~name:"WRITE"
    ~inputs:
      [
        ("wr_addr_valid", Sort.bool);
        ("wr_addr_in", Sort.bv 8);
        ("wr_length_in", Sort.bv 4);
        ("wr_data_in", Sort.bv 16);
        ("wr_data_valid", Sort.bool);
      ]
    ~states:
      [
        Ila.state "wr_addr_ready" Sort.bool ();
        Ila.state "wr_data_ready" Sort.bool ();
        Ila.state "wr_down_addr" (Sort.bv 8) ();
        Ila.state "wr_down_data" (Sort.bv 16) ();
        Ila.state "wr_down_en" Sort.bool ();
        Ila.state "tx_wr_active" Sort.bool ~kind:Ila.Internal ();
        Ila.state "tx_wr_addr" (Sort.bv 8) ~kind:Ila.Internal ();
        Ila.state "tx_wr_length" (Sort.bv 4) ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "WR_ADDR_WAIT"
          ~decode:(not_ tx_wr_active &&: not_ wr_addr_valid)
          ~updates:[ ("wr_addr_ready", tt); ("wr_down_en", ff) ]
          ();
        Ila.instr "WR_ADDR_COMMIT"
          ~decode:(not_ tx_wr_active &&: wr_addr_valid)
          ~updates:
            [
              ("wr_addr_ready", ff);
              ("tx_wr_active", tt);
              ("tx_wr_addr", wr_addr_in);
              ("tx_wr_length", wr_length_in);
              ("wr_down_en", ff);
            ]
          ();
        Ila.instr "WR_DATA_PREPARE" ~parent:"WR_ADDR_COMMIT"
          ~decode:(pending &&: not_ wr_data_valid)
          ~updates:[ ("wr_data_ready", tt); ("wr_down_en", ff) ]
          ();
        Ila.instr "WR_DATA_COMMIT" ~parent:"WR_ADDR_COMMIT"
          ~decode:(pending &&: wr_data_valid)
          ~updates:
            [
              ("wr_down_addr", tx_wr_addr);
              ("wr_down_data", wr_data_in);
              ("wr_down_en", tt);
              ("tx_wr_addr", add_int tx_wr_addr 1);
              ("tx_wr_length", sub_int tx_wr_length 1);
              ("wr_data_ready", ff);
            ]
          ();
        Ila.instr "WR_LAST_RESPONSE" ~parent:"WR_ADDR_COMMIT" ~decode:last
          ~updates:
            [ ("tx_wr_active", ff); ("wr_addr_ready", tt); ("wr_down_en", ff) ]
          ();
      ]

(* ---------------- RTL implementation ---------------- *)

(* The read engine keeps explicit flag registers; the write engine is a
   two-bit FSM (0 = idle, 1 = data, 2 = response) whose "active" facet
   is recovered by the refinement map as [wr_state != 0].  [data_mux]
   selects the buggy or golden burst source. *)
let make_rtl ~buggy name =
  let rd_addr_valid = bool_var "rd_addr_valid" in
  let rd_addr_in = bv_var "rd_addr_in" 8 in
  let rd_length_in = bv_var "rd_length_in" 4 in
  let rd_burst_in = bool_var "rd_burst_in" in
  let rd_data_ready = bool_var "rd_data_ready" in
  let rd_fifo_in = bv_var "rd_fifo_in" 16 in
  let rd_active_q = bool_var "rd_active_q" in
  let rd_addr_q = bv_var "rd_addr_q" 8 in
  let rd_len_q = bv_var "rd_len_q" 4 in
  let rd_burst_q = bool_var "rd_burst_q" in
  let accept_rd = not_ rd_active_q &&: rd_addr_valid in
  let rd_last = rd_active_q &&: rd_data_ready &&: eq_int rd_len_q 1 in
  let burst_src = if buggy then rd_burst_in else rd_burst_q in
  let wr_addr_valid = bool_var "wr_addr_valid" in
  let wr_addr_in = bv_var "wr_addr_in" 8 in
  let wr_length_in = bv_var "wr_length_in" 4 in
  let wr_data_in = bv_var "wr_data_in" 16 in
  let wr_data_valid = bool_var "wr_data_valid" in
  let wr_state = bv_var "wr_state" 2 in
  let wr_addr_q = bv_var "wr_addr_q" 8 in
  let wr_len_q = bv_var "wr_len_q" 4 in
  let in_idle = eq_int wr_state 0 in
  let in_data = eq_int wr_state 1 in
  let in_resp = eq_int wr_state 2 in
  let accept_wr = in_idle &&: wr_addr_valid in
  Rtl.make ~name
    ~inputs:
      [
        ("rd_addr_valid", Sort.bool);
        ("rd_addr_in", Sort.bv 8);
        ("rd_length_in", Sort.bv 4);
        ("rd_burst_in", Sort.bool);
        ("rd_data_ready", Sort.bool);
        ("rd_fifo_in", Sort.bv 16);
        ("wr_addr_valid", Sort.bool);
        ("wr_addr_in", Sort.bv 8);
        ("wr_length_in", Sort.bv 4);
        ("wr_data_in", Sort.bv 16);
        ("wr_data_valid", Sort.bool);
      ]
    ~wires:
      [
        ("rd_beat", beat burst_src rd_fifo_in);
        ( "wr_take_beat",
          in_data &&: wr_data_valid &&: not_ (eq_int wr_len_q 0) );
      ]
    ~registers:
      [
        (* read engine *)
        Rtl.reg "rd_active_q" Sort.bool
          (ite accept_rd tt (ite rd_last ff rd_active_q));
        Rtl.reg "rd_addr_q" (Sort.bv 8)
          (ite accept_rd rd_addr_in
             (ite
                (rd_active_q &&: rd_data_ready &&: rd_burst_q)
                (add_int rd_addr_q 1) rd_addr_q));
        Rtl.reg "rd_len_q" (Sort.bv 4)
          (ite accept_rd rd_length_in
             (ite (rd_active_q &&: rd_data_ready) (sub_int rd_len_q 1) rd_len_q));
        Rtl.reg "rd_burst_q" Sort.bool (ite accept_rd rd_burst_in rd_burst_q);
        Rtl.reg "rd_data_q" (Sort.bv 16)
          (ite
             (rd_active_q &&: not_ rd_data_ready)
             (bv_var "rd_beat" 16) (bv_var "rd_data_q" 16));
        Rtl.reg "rd_valid_q" Sort.bool
          (ite (rd_active_q &&: not_ rd_data_ready) tt ff);
        Rtl.reg "rd_aready_q" Sort.bool
          (ite accept_rd ff (ite (not_ rd_active_q ||: rd_last) tt (bool_var "rd_aready_q")));
        (* write engine: FSM 0=idle 1=data 2=resp *)
        Rtl.reg "wr_state" (Sort.bv 2)
          (ite accept_wr
             (ite (eq_int wr_length_in 0) (bv ~width:2 2) (bv ~width:2 1))
             (ite
                (bool_var "wr_take_beat" &&: eq_int wr_len_q 1)
                (bv ~width:2 2)
                (ite in_resp (bv ~width:2 0) wr_state)));
        Rtl.reg "wr_addr_q" (Sort.bv 8)
          (ite accept_wr wr_addr_in
             (ite (bool_var "wr_take_beat") (add_int wr_addr_q 1) wr_addr_q));
        Rtl.reg "wr_len_q" (Sort.bv 4)
          (ite accept_wr wr_length_in
             (ite (bool_var "wr_take_beat") (sub_int wr_len_q 1) wr_len_q));
        Rtl.reg "wr_aready_q" Sort.bool
          (ite accept_wr ff (ite (in_resp ||: in_idle) tt (bool_var "wr_aready_q")));
        Rtl.reg "wr_dready_q" Sort.bool
          (ite (in_data &&: not_ wr_data_valid) tt ff);
        Rtl.reg "wr_down_addr_q" (Sort.bv 8)
          (ite (bool_var "wr_take_beat") wr_addr_q (bv_var "wr_down_addr_q" 8));
        Rtl.reg "wr_down_data_q" (Sort.bv 16)
          (ite (bool_var "wr_take_beat") wr_data_in (bv_var "wr_down_data_q" 16));
        Rtl.reg "wr_down_en_q" Sort.bool (bool_var "wr_take_beat");
      ]
    ~outputs:
      [
        "rd_aready_q";
        "rd_data_q";
        "rd_valid_q";
        "wr_aready_q";
        "wr_dready_q";
        "wr_down_addr_q";
        "wr_down_data_q";
        "wr_down_en_q";
      ]

let rtl = make_rtl ~buggy:false "elink_axi_slave"
let rtl_buggy = make_rtl ~buggy:true "elink_axi_slave_buggy"

let refmap_for rtl port =
  match port with
  | "READ" ->
    Refmap.make ~ila:read_port ~rtl
      ~state_map:
        [
          ("rd_addr_ready", bool_var "rd_aready_q");
          ("rd_data", bv_var "rd_data_q" 16);
          ("rd_data_valid", bool_var "rd_valid_q");
          ("tx_rd_active", bool_var "rd_active_q");
          ("tx_rd_addr", bv_var "rd_addr_q" 8);
          ("tx_rd_length", bv_var "rd_len_q" 4);
          ("tx_rd_burst", bool_var "rd_burst_q");
        ]
      ~interface_map:
        [
          ("rd_addr_valid", bool_var "rd_addr_valid");
          ("rd_addr_in", bv_var "rd_addr_in" 8);
          ("rd_length_in", bv_var "rd_length_in" 4);
          ("rd_burst_in", bool_var "rd_burst_in");
          ("rd_data_ready", bool_var "rd_data_ready");
          ("rd_fifo_in", bv_var "rd_fifo_in" 16);
        ]
      ~instruction_maps:
        [
          Refmap.imap "RD_ADDR_WAIT" (Refmap.After_cycles 1);
          Refmap.imap "RD_ADDR_COMMIT" (Refmap.After_cycles 1);
          Refmap.imap "RD_DATA_PREPARE" (Refmap.After_cycles 1);
          Refmap.imap "RD_DATA_COMMIT" (Refmap.After_cycles 1);
        ]
      ~invariants:
        [
          (* mid-transaction the address channel is never ready *)
          bool_var "rd_active_q" ==>: not_ (bool_var "rd_aready_q");
        ]
      ()
  | "WRITE" ->
    let wr_state = bv_var "wr_state" 2 in
    Refmap.make ~ila:write_port ~rtl
      ~state_map:
        [
          ("wr_addr_ready", bool_var "wr_aready_q");
          ("wr_data_ready", bool_var "wr_dready_q");
          ("wr_down_addr", bv_var "wr_down_addr_q" 8);
          ("wr_down_data", bv_var "wr_down_data_q" 16);
          ("wr_down_en", bool_var "wr_down_en_q");
          ("tx_wr_active", not_ (eq_int wr_state 0));
          ("tx_wr_addr", bv_var "wr_addr_q" 8);
          ("tx_wr_length", bv_var "wr_len_q" 4);
        ]
      ~interface_map:
        [
          ("wr_addr_valid", bool_var "wr_addr_valid");
          ("wr_addr_in", bv_var "wr_addr_in" 8);
          ("wr_length_in", bv_var "wr_length_in" 4);
          ("wr_data_in", bv_var "wr_data_in" 16);
          ("wr_data_valid", bool_var "wr_data_valid");
        ]
      ~instruction_maps:
        [
          Refmap.imap "WR_ADDR_WAIT" (Refmap.After_cycles 1);
          Refmap.imap "WR_ADDR_COMMIT" (Refmap.After_cycles 1);
          Refmap.imap "WR_DATA_PREPARE" (Refmap.After_cycles 1);
          Refmap.imap "WR_DATA_COMMIT" (Refmap.After_cycles 1);
          Refmap.imap "WR_LAST_RESPONSE" (Refmap.After_cycles 1);
        ]
      ~invariants:
        [
          (* the response state is only entered with an exhausted
             length; unreachable (state=2, len!=0) starts would
             otherwise produce spurious counterexamples *)
          eq_int wr_state 2 ==>: eq_int (bv_var "wr_len_q" 4) 0;
          (* the FSM has no state 3 *)
          not_ (eq_int wr_state 3);
          (* the data state always has beats left *)
          eq_int wr_state 1 ==>: not_ (eq_int (bv_var "wr_len_q" 4) 0);
          (* data-ready is only raised in the data state *)
          bool_var "wr_dready_q" ==>: eq_int wr_state 1;
        ]
      ()
  | other -> invalid_arg ("Axi_slave.refmap_for: unknown port " ^ other)

let design =
  {
    Design.name = "AXI Slave";
    description =
      "eLink AXI slave: independent READ and WRITE transaction ports \
       (class: multiple command interfaces without shared state)";
    module_class = Design.Multi_port_independent;
    ports_before_integration = 2;
    module_ila = Compose.union ~name:"AXI-SLAVE" [ read_port; write_port ];
    rtl;
    refmap_for;
    bugs =
      [
        {
          Design.bug_label = "rd_burst";
          bug_description =
            "rd_data update uses the input rd_burst_in instead of the \
             architectural state tx_rd_burst (the bug reported in the paper, \
             Sec. V-B1)";
          buggy_rtl = rtl_buggy;
        };
      ];
    coverage_assumptions = (fun _ -> []);
  }
