open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* Decode semantics shared by the specification: the control outputs as
   a function of the word being decoded and the *remaining-step* count
   (phase).  Phase 0 is the final (executing) step; non-zero phases are
   operand-fetch steps. *)

let steps_of word = extract ~hi:1 ~lo:0 word

let base_alu_op word =
  (* opcode class in bits 7:5, width bit in 4 *)
  concat (extract ~hi:4 ~lo:4 word) (extract ~hi:7 ~lo:5 word)

let outs_spec word phase =
  let final = eq_int phase 0 in
  [
    ("alu_op", ite final (base_alu_op word) (bv ~width:4 0b1111));
    ("pc_wr", final &&: bit word 3);
    ("wr_sfr", final &&: bit word 2);
    ("mem_act", not_ final ||: bit word 0);
    ("src_sel", ite final (extract ~hi:6 ~lo:5 word) (bv ~width:2 0));
    ("dst_sel", ite final (extract ~hi:4 ~lo:3 word) (bv ~width:2 3));
  ]

let ila =
  let wait = bool_var "wait" in
  let word_in = bv_var "word_in" 8 in
  let current_word = bv_var "current_word" 8 in
  let step = bv_var "step" 2 in
  let load_updates =
    ("current_word", word_in)
    :: ("step", steps_of word_in)
    :: outs_spec word_in (steps_of word_in)
  in
  let continue_updates k =
    ("step", bv ~width:2 (k - 1)) :: outs_spec current_word (bv ~width:2 (k - 1))
  in
  Ila.make ~name:"DECODER"
    ~inputs:[ ("wait", Sort.bool); ("word_in", Sort.bv 8) ]
    ~states:
      [
        Ila.state "alu_op" (Sort.bv 4) ();
        Ila.state "pc_wr" Sort.bool ();
        Ila.state "wr_sfr" Sort.bool ();
        Ila.state "mem_act" Sort.bool ();
        Ila.state "src_sel" (Sort.bv 2) ();
        Ila.state "dst_sel" (Sort.bv 2) ();
        Ila.state "current_word" (Sort.bv 8) ~kind:Ila.Internal ();
        Ila.state "step" (Sort.bv 2) ~kind:Ila.Internal ();
      ]
    ~instructions:
      [
        Ila.instr "stall" ~decode:wait ~updates:[] ();
        Ila.instr "process" ~decode:(not_ wait) ~updates:[] ();
        Ila.instr "process-load" ~parent:"process"
          ~decode:(not_ wait &&: eq_int step 0)
          ~updates:load_updates ();
        Ila.instr "process-step3" ~parent:"process"
          ~decode:(not_ wait &&: eq_int step 3)
          ~updates:(continue_updates 3) ();
        Ila.instr "process-step2" ~parent:"process"
          ~decode:(not_ wait &&: eq_int step 2)
          ~updates:(continue_updates 2) ();
        Ila.instr "process-step1" ~parent:"process"
          ~decode:(not_ wait &&: eq_int step 1)
          ~updates:(continue_updates 1) ();
      ]

(* The implementation: a down-counting status register, the output
   network factored through shared wires, and a free-running fetch
   counter that is *not* architectural. *)
let rtl =
  let wait_data = bool_var "wait_data" in
  let op_in = bv_var "op_in" 8 in
  let op = bv_var "op" 8 in
  let status = bv_var "status" 2 in
  let accept = bool_var "accept" in
  let cur = bv_var "cur" 8 in
  let new_status = bv_var "new_status" 2 in
  let final = bool_var "final" in
  let hold e old = ite wait_data old e in
  Rtl.make ~name:"oc8051_decoder"
    ~inputs:[ ("wait_data", Sort.bool); ("op_in", Sort.bv 8) ]
    ~wires:
      [
        ("accept", not_ wait_data &&: eq_int (bv_var "status" 2) 0);
        ("cur", ite accept op_in op);
        ( "new_status",
          (* accept: load the word's step count; otherwise count down,
             saturating at zero (a different formulation from the spec's
             per-step constants, same function) *)
          ite accept
            (extract ~hi:1 ~lo:0 op_in)
            (ite (eq_int status 0) status (sub_int status 1)) );
        ("final", eq_int new_status 0);
        (* output network: same function as the spec, factored
           differently (bit-level or/and instead of a big mux) *)
        ( "alu_op_next",
          (bool_to_bv (not_ final ||: bit cur 4)
          |> fun hi -> concat hi (ite final (extract ~hi:7 ~lo:5 cur) (bv ~width:3 0b111))) );
        ("pc_wr_next", bit cur 3 &&: final);
        ("wr_next", bit cur 2 &&: final);
        ("mem_act_next", bit cur 0 ||: not_ final);
        ("src_sel_next", extract ~hi:6 ~lo:5 cur &: ite final (bv ~width:2 3) (bv ~width:2 0));
        ( "dst_sel_next",
          ite final (extract ~hi:4 ~lo:3 cur) (bv ~width:2 3) );
      ]
    ~registers:
      [
        Rtl.reg "op" (Sort.bv 8) (hold (bv_var "cur" 8) op);
        Rtl.reg "status" (Sort.bv 2) (hold (bv_var "new_status" 2) status);
        Rtl.reg "alu_op_q" (Sort.bv 4)
          (hold (bv_var "alu_op_next" 4) (bv_var "alu_op_q" 4));
        Rtl.reg "pc_wr_q" Sort.bool
          (hold (bool_var "pc_wr_next") (bool_var "pc_wr_q"));
        Rtl.reg "wr_q" Sort.bool (hold (bool_var "wr_next") (bool_var "wr_q"));
        Rtl.reg "mem_act_q" Sort.bool
          (hold (bool_var "mem_act_next") (bool_var "mem_act_q"));
        Rtl.reg "src_sel_q" (Sort.bv 2)
          (hold (bv_var "src_sel_next" 2) (bv_var "src_sel_q" 2));
        Rtl.reg "dst_sel_q" (Sort.bv 2)
          (hold (bv_var "dst_sel_next" 2) (bv_var "dst_sel_q" 2));
        (* implementation detail below the abstraction: free-running
           fetch counter used for bus arbitration debug *)
        Rtl.reg "fetch_cnt" (Sort.bv 4)
          (ite (bool_var "accept") (add_int (bv_var "fetch_cnt" 4) 1)
             (bv_var "fetch_cnt" 4));
      ]
    ~outputs:
      [ "alu_op_q"; "pc_wr_q"; "wr_q"; "mem_act_q"; "src_sel_q"; "dst_sel_q" ]

let refmap_for rtl _port =
  Refmap.make ~ila ~rtl
    ~state_map:
      [
        ("alu_op", bv_var "alu_op_q" 4);
        ("pc_wr", bool_var "pc_wr_q");
        ("wr_sfr", bool_var "wr_q");
        ("mem_act", bool_var "mem_act_q");
        ("src_sel", bv_var "src_sel_q" 2);
        ("dst_sel", bv_var "dst_sel_q" 2);
        ("current_word", bv_var "op" 8);
        ("step", bv_var "status" 2);
      ]
    ~interface_map:
      [ ("wait", bool_var "wait_data"); ("word_in", bv_var "op_in" 8) ]
    ~instruction_maps:
      [
        Refmap.imap "stall" (Refmap.After_cycles 1);
        Refmap.imap "process-load" (Refmap.After_cycles 1);
        Refmap.imap "process-step3" (Refmap.After_cycles 1);
        Refmap.imap "process-step2" (Refmap.After_cycles 1);
        Refmap.imap "process-step1" (Refmap.After_cycles 1);
      ]
    ()

let design =
  {
    Design.name = "Decoder";
    description =
      "8051 instruction decoder: one command interface (wait, word_in), \
       multi-step decoding of one program word";
    module_class = Design.Single_port;
    ports_before_integration = 1;
    module_ila = Compose.union ~name:"DECODER" [ ila ];
    rtl;
    refmap_for;
    bugs = [];
    coverage_assumptions = (fun _ -> []);
  }
