type state = { acc : int; breg : int; carry : bool }

let reset = { acc = 0; breg = 0; carry = false }

let opcode_of_word w = (((w lsr 4) land 1) lsl 3) lor ((w lsr 5) land 7)
let steps_of_word w = w land 3

let byte n = n land 0xff

let execute s ~word ~src =
  let cbit = if s.carry then 1 else 0 in
  match opcode_of_word word with
  | 0 (* ADD *) ->
    let sum = s.acc + src in
    { s with acc = byte sum; carry = sum > 0xff }
  | 1 (* ADDC *) ->
    let sum = s.acc + src + cbit in
    { s with acc = byte sum; carry = sum > 0xff }
  | 2 (* SUB *) ->
    let diff = s.acc - src in
    { s with acc = byte diff; carry = diff < 0 }
  | 3 (* SUBB *) ->
    let diff = s.acc - src - cbit in
    { s with acc = byte diff; carry = diff < 0 }
  | 4 (* INC *) -> { s with acc = byte (s.acc + 1) }
  | 5 (* DEC *) -> { s with acc = byte (s.acc - 1) }
  | 6 (* MUL *) ->
    let prod = s.acc * src in
    { acc = byte prod; breg = byte (prod lsr 8); carry = false }
  | 7 (* DIV *) ->
    if src = 0 then { acc = 0xff; breg = s.acc; carry = true }
    else { acc = s.acc / src; breg = s.acc mod src; carry = false }
  | 8 (* ANL *) -> { s with acc = s.acc land src }
  | 9 (* ORL *) -> { s with acc = s.acc lor src }
  | 10 (* XRL *) -> { s with acc = s.acc lxor src }
  | 11 (* CLR *) -> { s with acc = 0; carry = false }
  | 12 (* CPL *) -> { s with acc = byte (lnot s.acc) }
  | 13 (* RL *) -> { s with acc = byte ((s.acc lsl 1) lor (s.acc lsr 7)) }
  | 14 (* RR *) ->
    { s with acc = byte ((s.acc lsr 1) lor ((s.acc land 1) lsl 7)) }
  | 15 (* SWAP *) ->
    { s with acc = byte ((s.acc lsl 4) lor (s.acc lsr 4)) }
  | _ -> assert false

let run program =
  List.fold_left (fun s (word, src) -> execute s ~word ~src) reset program

let pp fmt s =
  Format.fprintf fmt "acc=0x%02x b=0x%02x cy=%b" s.acc s.breg s.carry
