(** Case study: the OpenPiton NoC router (Sec. V-C3 of the paper;
    multiple command interfaces with shared state).

    The router connects to four neighbours and the local core, so each
    direction X in {N, S, E, W, P} has an IN-port-X (incoming flits) and
    an OUT-port-X (outgoing flits) — ten ports in total.

    Every IN-port can update the {e dynamic routing table} (a flit with
    the config bit set installs a route), so the five IN-ports share the
    table and are integrated into a single IN-port; simultaneous
    conflicting installs are resolved by a {e round-robin} arbiter (a
    counter state selects the winning port, the lowest-numbered
    requester winning by default), per the specification.  The five
    OUT-ports share the crossbar grant and are integrated the same way.
    The result is one IN-port and one OUT-port with 2^5 = 32
    instructions each — ports 10 before/2 after integration and 64
    instructions, as in the paper's Table I. *)

val directions : string list
val in_port : int -> Ilv_core.Ila.t
val out_port : int -> Ilv_core.Ila.t
val in_port_integrated : Ilv_core.Ila.t
val out_port_integrated : Ilv_core.Ila.t
val design : Design.t
