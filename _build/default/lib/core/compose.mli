(** Composition of port-ILAs (Section III-C of the paper).

    - {!union} composes ports that are fully independent: the module-ILA
      is just the list of port-ILAs, each accepting and decoding its
      command separately.

    - {!integrate} composes ports that {e share state}.  The integrated
      port's inputs and states are the unions; its instruction set is
      the cross product of the ports' instruction sets, {e taken at the
      sub-instruction level} (the atomic unit), so every interleaving of
      steps is represented.  A combined instruction triggers when all of
      its component instructions trigger: D = ⋀ D_i.

      When several components update the same shared state with
      different expressions, the update conflicts.  The informal
      specification must resolve it (e.g. "an update to 1 has priority",
      or a round-robin arbiter); the [resolve] callback encodes that
      resolution.  A conflict the resolver declines is a
      {e specification gap} and integration fails with the offending
      cases — exactly the paper's gap-flagging behaviour. *)

open Ilv_expr

type writer = {
  port : string;  (** port-ILA name *)
  instr : string;  (** component (sub-)instruction *)
  update : Expr.t;
}

type conflict = {
  state : string;  (** the shared state with clashing updates *)
  combined_instr : string;  (** name of the cross-product instruction *)
  writers : writer list;
}

type gap = conflict
(** An unresolved conflict: a specification gap. *)

type resolver = conflict -> Expr.t option
(** Returns the merged update expression, or [None] to flag a gap. *)

val union : name:string -> Ila.t list -> Module_ila.t
(** The module-ILA of independent ports.
    @raise Module_ila.Not_independent if they share state or inputs. *)

val shared_states : Ila.t -> Ila.t -> string list
(** State names common to both ports (the reason to integrate). *)

val integrate :
  name:string -> ?resolve:resolver -> Ila.t list -> (Ila.t, gap list) result
(** Cross-product integration of two or more port-ILAs.  Shared states
    must agree on sort, kind and initial value; shared inputs on sort.
    Returns the integrated single port-ILA, or the list of
    specification gaps if any conflict is unresolved.
    @raise Ila.Invalid_ila on incompatible shared declarations. *)

val map_instructions : (Ila.instruction -> Ila.instruction) -> Ila.t -> Ila.t
(** Rebuilds an ILA with transformed instructions (revalidated).  Used
    e.g. to weave an arbiter counter's advance into every integrated
    instruction. *)

(** Ready-made resolvers for the specification idioms in the paper. *)
module Resolve : sig
  val priority_value : Value.t -> resolver
  (** "An update to value [v] has higher priority": if some writer
      updates to constant [v], the merged update is [v]; otherwise, if
      all writers agree syntactically, that update; otherwise a gap.
      This is the 8051 memory-interface [mem_wait] rule. *)

  val port_priority : string list -> resolver
  (** The writer whose port appears earliest in the list wins. *)

  val round_robin : counter:Expr.t -> port_index:(string -> int option) -> resolver
  (** Arbiter: writer of port [i] wins when [counter] equals [i]; the
      merged update is the ite-chain over the present writers (the
      lowest-indexed present writer is the default arm).  [counter] is
      an expression over the integrated states (usually a state
      variable); advancing it is the design's job, via
      {!map_instructions}. *)

  val first_of : resolver list -> resolver
  (** Tries resolvers left to right. *)
end
