lib/core/propgen.mli: Ila Ilv_rtl Property Refmap
