lib/core/module_ila.ml: Format Hashtbl Ila Ilv_expr List Printf Sort String
