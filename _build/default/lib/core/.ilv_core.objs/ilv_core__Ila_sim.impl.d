lib/core/ila_sim.ml: Eval Ila Ilv_expr List Printf Sort Value
