lib/core/refmap.ml: Expr Format Ila Ilv_expr Ilv_rtl List Option Pp_expr Rtl Sort
