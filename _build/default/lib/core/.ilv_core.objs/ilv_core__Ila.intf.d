lib/core/ila.mli: Eval Expr Format Ilv_expr Sort Value
