lib/core/checker.mli: Property Trace
