lib/core/ila_stats.mli: Format Ila Module_ila
