lib/core/ila_text.mli: Ila
