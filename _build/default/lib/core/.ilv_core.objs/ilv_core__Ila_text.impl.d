lib/core/ila_text.ml: Bitvec Buffer Format Ila Ilv_expr List Option Parse Pp_expr Printf Sort String Value
