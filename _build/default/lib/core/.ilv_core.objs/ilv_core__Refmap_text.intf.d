lib/core/refmap_text.mli: Ila Ilv_rtl Refmap
