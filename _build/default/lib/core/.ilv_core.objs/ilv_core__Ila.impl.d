lib/core/ila.ml: Eval Expr Format Hashtbl Ilv_expr List Map Sort String Value
