lib/core/ila_of_rtl.mli: Ila Ilv_rtl Refmap Rtl
