lib/core/ila_check.ml: Bitblast Build Ila Ilv_expr Ilv_sat List Sort Value
