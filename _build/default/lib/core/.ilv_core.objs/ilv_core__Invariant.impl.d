lib/core/invariant.ml: Bitblast Build Expr Ilv_expr Ilv_rtl Ilv_sat List Printf Rtl Trace Unroll Value
