lib/core/compose.mli: Expr Ila Ilv_expr Module_ila Value
