lib/core/refmap.mli: Expr Format Ila Ilv_expr Ilv_rtl Rtl
