lib/core/property.mli: Expr Format Ila Ilv_expr
