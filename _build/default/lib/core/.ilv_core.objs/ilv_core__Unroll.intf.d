lib/core/unroll.mli: Expr Ilv_expr Ilv_rtl Rtl Sort
