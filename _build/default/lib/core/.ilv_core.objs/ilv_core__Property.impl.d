lib/core/property.ml: Expr Format Ila Ilv_expr List
