lib/core/ila_of_rtl.ml: Build Expr Ila Ilv_expr Ilv_rtl List Refmap Rtl Subst
