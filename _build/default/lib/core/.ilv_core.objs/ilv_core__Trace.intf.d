lib/core/trace.mli: Format Ilv_expr Sort Value
