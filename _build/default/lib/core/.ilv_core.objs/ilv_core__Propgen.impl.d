lib/core/propgen.ml: Build Ila Ilv_expr List Pp_expr Printf Property Refmap String Subst Unroll
