lib/core/verify.mli: Checker Format Ilv_rtl Module_ila Refmap
