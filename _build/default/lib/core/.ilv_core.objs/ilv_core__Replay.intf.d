lib/core/replay.mli: Ila Ilv_rtl Refmap Rtl Trace
