lib/core/reach.mli: Expr Ilv_expr Ilv_rtl Rtl Sort Value
