lib/core/ila_check.mli: Expr Ila Ilv_expr Sort Value
