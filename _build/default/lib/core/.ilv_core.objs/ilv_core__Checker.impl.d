lib/core/checker.ml: Bitblast Build Eval Expr Ilv_expr Ilv_sat List Printf Property Sat Simp String Trace Unix
