lib/core/module_ila.mli: Format Ila
