lib/core/verify.ml: Checker Format Ila List Module_ila Propgen Trace Unix
