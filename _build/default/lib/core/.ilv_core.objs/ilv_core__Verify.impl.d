lib/core/verify.ml: Checker Format Ila List Module_ila Printexc Propgen Trace Unix
