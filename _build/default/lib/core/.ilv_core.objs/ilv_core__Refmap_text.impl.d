lib/core/refmap_text.ml: Buffer Expr Format Ilv_expr Ilv_rtl List Option Parse Pp_expr Printf Refmap Rtl String
