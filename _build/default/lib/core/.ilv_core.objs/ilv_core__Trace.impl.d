lib/core/trace.ml: Bitvec Format Hashtbl Ilv_expr Ilv_rtl List String Value
