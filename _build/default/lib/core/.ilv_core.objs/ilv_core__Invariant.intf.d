lib/core/invariant.mli: Expr Ilv_expr Ilv_rtl Rtl Trace
