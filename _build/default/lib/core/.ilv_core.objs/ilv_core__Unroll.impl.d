lib/core/unroll.ml: Expr Ilv_expr Ilv_rtl List Map Printf Rtl Sort String Subst
