lib/core/reach.ml: Array Bdd Bitvec Circuits Ilv_expr Ilv_rtl Ilv_sat List Rtl Sort Subst Value
