lib/core/replay.ml: Eval Ila Ila_sim Ilv_expr Ilv_rtl List Refmap Rtl Sim Sort String Trace Value
