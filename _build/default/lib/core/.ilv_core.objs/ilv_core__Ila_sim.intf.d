lib/core/ila_sim.mli: Eval Ila Ilv_expr Value
