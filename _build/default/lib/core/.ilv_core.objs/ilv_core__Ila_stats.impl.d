lib/core/ila_stats.ml: Format Hashtbl Ila Ila_text Ilv_expr List Module_ila
