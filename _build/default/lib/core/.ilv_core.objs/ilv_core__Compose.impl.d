lib/core/compose.ml: Bitvec Build Expr Format Ila Ilv_expr List Module_ila Sort String Value
