open Ilv_expr
open Ilv_rtl
open Ilv_sat

type counterexample = { kind : [ `Base | `Step ]; trace : Trace.t }
type result = Inductive | Violated of counterexample

let conj = Build.and_list

(* Constrain the cycle-0 registers of the unrolling to the reset
   values. *)
let assert_reset ctx (rtl : Rtl.t) =
  List.iter
    (fun (r : Rtl.register) ->
      let var = Expr.var (Unroll.base_var r.Rtl.reg_name 0) r.Rtl.sort in
      let value =
        match Rtl.init_value r with
        | Value.V_bool b -> Build.bool b
        | Value.V_bv v -> Build.bv_of v
        | Value.V_mem m ->
          if not (Value.Int_map.is_empty m.Value.assoc) then
            invalid_arg
              "Invariant: non-uniform memory reset values are not supported"
          else Build.const_mem ~addr_width:m.Value.addr_width ~default:m.Value.default
      in
      Bitblast.assert_bool ctx (Build.eq var value))
    rtl.Rtl.registers

let trace_of ~property ~obligation u model =
  Trace.of_model ~property ~obligation ~vars:(Unroll.base_vars_used u) model

let check_inductive ~rtl invs =
  let inv = conj invs in
  (* base: the reset state satisfies the invariant *)
  let base =
    let u = Unroll.create rtl in
    let ctx = Bitblast.create () in
    assert_reset ctx rtl;
    Bitblast.assert_not ctx (Unroll.at_cycle u ~cycle:0 inv);
    match Bitblast.check ctx with
    | Bitblast.Unsat -> None
    | Bitblast.Sat model ->
      Some
        {
          kind = `Base;
          trace = trace_of ~property:"invariant" ~obligation:"base case" u model;
        }
    | Bitblast.Unknown _ -> assert false (* no limit passed *)
  in
  match base with
  | Some cex -> Violated cex
  | None -> (
    (* step: from any invariant state, one transition preserves it *)
    let u = Unroll.create rtl in
    let ctx = Bitblast.create () in
    Bitblast.assert_bool ctx (Unroll.at_cycle u ~cycle:0 inv);
    Bitblast.assert_not ctx (Unroll.at_cycle u ~cycle:1 inv);
    match Bitblast.check ctx with
    | Bitblast.Unsat -> Inductive
    | Bitblast.Sat model ->
      Violated
        {
          kind = `Step;
          trace =
            trace_of ~property:"invariant" ~obligation:"inductive step" u
              model;
        }
    | Bitblast.Unknown _ -> assert false (* no limit passed *))

type bmc_result = Holds_up_to of int | Fails_at of int * Trace.t

let bmc ~rtl ~depth p =
  let rec go k =
    if k > depth then Holds_up_to depth
    else begin
      let u = Unroll.create rtl in
      let ctx = Bitblast.create () in
      assert_reset ctx rtl;
      Bitblast.assert_not ctx (Unroll.at_cycle u ~cycle:k p);
      match Bitblast.check ctx with
      | Bitblast.Unsat -> go (k + 1)
      | Bitblast.Sat model ->
        Fails_at
          ( k,
            trace_of ~property:"bmc"
              ~obligation:(Printf.sprintf "violation at cycle %d" k)
              u model )
      | Bitblast.Unknown _ -> assert false (* no limit passed *)
    end
  in
  go 0
