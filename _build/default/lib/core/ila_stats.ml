
type t = {
  loc : int;
  state_bits : int;
  n_ports : int;
  n_instructions : int;
  n_inputs : int;
}

let of_port (ila : Ila.t) =
  {
    (* exact line count of the model's textual form (Ila_text) *)
    loc = Ila_text.loc ila;
    state_bits = Ila.state_bits ila;
    n_ports = 1;
    n_instructions = List.length (Ila.leaf_instructions ila);
    n_inputs = List.length ila.Ila.inputs;
  }

let of_module (m : Module_ila.t) =
  (* a state or input shared between ports (read-only sharing) counts
     once toward the architectural footprint *)
  let seen_states = Hashtbl.create 32 in
  let seen_inputs = Hashtbl.create 32 in
  let distinct_state_bits (port : Ila.t) =
    List.fold_left
      (fun acc (st : Ila.state) ->
        if Hashtbl.mem seen_states st.Ila.state_name then acc
        else begin
          Hashtbl.add seen_states st.Ila.state_name ();
          acc + Ilv_expr.Sort.bit_count st.Ila.sort
        end)
      0 port.Ila.states
  in
  let distinct_inputs (port : Ila.t) =
    List.fold_left
      (fun acc (n, _) ->
        if Hashtbl.mem seen_inputs n then acc
        else begin
          Hashtbl.add seen_inputs n ();
          acc + 1
        end)
      0 port.Ila.inputs
  in
  List.fold_left
    (fun acc port ->
      let s = of_port port in
      {
        loc = acc.loc + s.loc;
        state_bits = acc.state_bits + distinct_state_bits port;
        n_ports = acc.n_ports + 1;
        n_instructions = acc.n_instructions + s.n_instructions;
        n_inputs = acc.n_inputs + distinct_inputs port;
      })
    { loc = 0; state_bits = 0; n_ports = 0; n_instructions = 0; n_inputs = 0 }
    m.Module_ila.ports

let pp fmt s =
  Format.fprintf fmt "loc=%d state_bits=%d ports=%d instructions=%d inputs=%d"
    s.loc s.state_bits s.n_ports s.n_instructions s.n_inputs
