open Ilv_expr

type writer = { port : string; instr : string; update : Expr.t }

type conflict = {
  state : string;
  combined_instr : string;
  writers : writer list;
}

type gap = conflict
type resolver = conflict -> Expr.t option

let union ~name ports = Module_ila.make ~name ports

let shared_states (a : Ila.t) (b : Ila.t) =
  List.filter_map
    (fun s ->
      let n = s.Ila.state_name in
      if Ila.find_state b n <> None then Some n else None)
    a.Ila.states

let fail fmt = Format.kasprintf (fun s -> raise (Ila.Invalid_ila s)) fmt

(* Union of declarations, requiring shared names to agree. *)
let merge_inputs name ports =
  List.fold_left
    (fun acc (port : Ila.t) ->
      List.fold_left
        (fun acc (n, sort) ->
          match List.assoc_opt n acc with
          | None -> acc @ [ (n, sort) ]
          | Some sort' ->
            if not (Sort.equal sort sort') then
              fail "%s: shared input %s has conflicting sorts" name n
            else acc)
        acc port.Ila.inputs)
    [] ports

let merge_states name ports =
  List.fold_left
    (fun acc (port : Ila.t) ->
      List.fold_left
        (fun acc (s : Ila.state) ->
          match
            List.find_opt
              (fun (s' : Ila.state) -> s'.Ila.state_name = s.Ila.state_name)
              acc
          with
          | None -> acc @ [ s ]
          | Some s' ->
            if not (Sort.equal s.Ila.sort s'.Ila.sort) then
              fail "%s: shared state %s has conflicting sorts" name
                s.Ila.state_name
            else if s.Ila.kind <> s'.Ila.kind then
              fail "%s: shared state %s has conflicting kinds" name
                s.Ila.state_name
            else begin
              let init_of (x : Ila.state) =
                match x.Ila.init with
                | Some v -> v
                | None -> Value.default_of_sort x.Ila.sort
              in
              if not (Value.equal (init_of s) (init_of s')) then
                fail "%s: shared state %s has conflicting initial values" name
                  s.Ila.state_name
              else acc
            end)
        acc port.Ila.states)
    [] ports

(* Cartesian product of the ports' leaf instruction lists. *)
let tuples ports =
  List.fold_left
    (fun acc (port : Ila.t) ->
      let leaves = Ila.leaf_instructions port in
      List.concat_map
        (fun prefix ->
          List.map (fun i -> prefix @ [ (port.Ila.name, i) ]) leaves)
        acc)
    [ [] ] ports

let integrate ~name ?(resolve = fun _ -> None) ports =
  if List.length ports < 2 then
    invalid_arg "Compose.integrate: need at least two ports";
  let inputs = merge_inputs name ports in
  let states = merge_states name ports in
  let gaps = ref [] in
  let instructions =
    List.map
      (fun tuple ->
        let combined_name =
          String.concat " & "
            (List.map (fun (_, (i : Ila.instruction)) -> i.Ila.instr_name) tuple)
        in
        let decode =
          Build.and_list
            (List.map (fun (_, (i : Ila.instruction)) -> i.Ila.decode) tuple)
        in
        (* group updates by target state, in first-writer order *)
        let updates = ref [] in
        List.iter
          (fun (port, (i : Ila.instruction)) ->
            List.iter
              (fun (target, e) ->
                let w = { port; instr = i.Ila.instr_name; update = e } in
                match List.assoc_opt target !updates with
                | None -> updates := !updates @ [ (target, [ w ]) ]
                | Some _ ->
                  updates :=
                    List.map
                      (fun (t, l) ->
                        if t = target then (t, l @ [ w ]) else (t, l))
                      !updates)
              i.Ila.updates)
          tuple;
        let merged =
          List.map
            (fun (target, writers) ->
              match writers with
              | [] -> assert false
              | [ w ] -> (target, w.update)
              | w :: rest ->
                if List.for_all (fun w' -> Expr.equal w'.update w.update) rest
                then (target, w.update)
                else begin
                  let c =
                    { state = target; combined_instr = combined_name; writers }
                  in
                  match resolve c with
                  | Some e -> (target, e)
                  | None ->
                    gaps := c :: !gaps;
                    (target, w.update) (* placeholder; result is Error *)
                end)
            !updates
        in
        Ila.instr combined_name ~decode ~updates:merged ())
      (tuples ports)
  in
  if !gaps <> [] then Error (List.rev !gaps)
  else Ok (Ila.make ~name ~inputs ~states ~instructions)

let map_instructions f (ila : Ila.t) =
  Ila.make ~name:ila.Ila.name ~inputs:ila.Ila.inputs ~states:ila.Ila.states
    ~instructions:(List.map f ila.Ila.instructions)

module Resolve = struct
  let priority_value v c =
    let const_equals w =
      match (v, Expr.node w.update) with
      | Value.V_bv bv, Expr.Bv_const bv' -> Bitvec.equal bv bv'
      | Value.V_bool b, Expr.Bool_const b' -> b = b'
      | (Value.V_bool _ | Value.V_bv _ | Value.V_mem _), _ -> false
    in
    match List.find_opt const_equals c.writers with
    | Some w -> Some w.update
    | None -> (
      match c.writers with
      | w :: rest
        when List.for_all (fun w' -> Expr.equal w'.update w.update) rest ->
        Some w.update
      | _ -> None)

  let port_priority order c =
    let rank w =
      let rec go i = function
        | [] -> max_int
        | p :: rest -> if p = w.port then i else go (i + 1) rest
      in
      go 0 order
    in
    match c.writers with
    | [] -> None
    | w :: rest ->
      let best =
        List.fold_left (fun b w' -> if rank w' < rank b then w' else b) w rest
      in
      if rank best = max_int then None else Some best.update

  let round_robin ~counter ~port_index c =
    let indexed =
      List.filter_map
        (fun w ->
          match port_index w.port with
          | Some i -> Some (i, w)
          | None -> None)
        c.writers
    in
    if List.length indexed <> List.length c.writers then None
    else begin
      let sorted = List.sort (fun (i, _) (j, _) -> compare i j) indexed in
      match sorted with
      | [] -> None
      | (_, first) :: rest ->
        Some
          (List.fold_left
             (fun acc (i, w) ->
               Build.ite (Build.eq_int counter i) w.update acc)
             first.update rest)
    end

  let first_of resolvers c =
    List.fold_left
      (fun acc r -> match acc with Some _ -> acc | None -> r c)
      None resolvers
end
