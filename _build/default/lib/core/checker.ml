open Ilv_expr
open Ilv_sat

type verdict = Proved | Failed of Trace.t

type stats = {
  time_s : float;
  n_obligations : int;
  cnf_vars : int;
  cnf_clauses : int;
  conflicts : int;
}

let base_vars_of (p : Property.t) (ob : Property.obligation) =
  let add acc e = Expr.vars e @ acc in
  let all =
    List.fold_left add (add (add [] ob.Property.guard) ob.Property.goal)
      p.Property.assumptions
  in
  let all =
    List.fold_left (fun acc (_, e) -> add acc e) all p.Property.ila_bindings
  in
  List.sort_uniq (fun (a, _) (b, _) -> String.compare a b) all

(* The generator substituted the ILA variables away; recover their
   valuation for the trace by evaluating the bindings under the model. *)
let ila_view (p : Property.t) vars model =
  let env =
    Eval.env_of_list (List.map (fun (n, sort) -> (n, model n sort)) vars)
  in
  List.map (fun (n, e) -> (n, Eval.eval env e)) p.Property.ila_bindings

let check ?(simplify = true) (p : Property.t) =
  let t0 = Unix.gettimeofday () in
  (* one incremental context per property: the assumptions are asserted
     once and each obligation is decided under per-query hypotheses *)
  let ctx = Bitblast.create () in
  let prep e = if simplify then Simp.simplify_fix e else e in
  List.iter (fun a -> Bitblast.assert_bool ctx (prep a)) p.Property.assumptions;
  let rec go = function
    | [] -> Proved
    | (ob : Property.obligation) :: rest -> (
      let result =
        Bitblast.check_under ctx
          ~hypotheses:[ prep ob.Property.guard; Build.not_ (prep ob.Property.goal) ]
      in
      match result with
      | Bitblast.Unsat -> go rest
      | Bitblast.Sat model ->
        let vars = base_vars_of p ob in
        Failed
          (Trace.of_model ~property:p.Property.prop_name
             ~obligation:ob.Property.label ~vars
             ~ila_values:(ila_view p vars model) model))
  in
  let verdict = go p.Property.obligations in
  let vars, clauses =
    let v, c = Bitblast.cnf_size ctx in
    (ref v, ref c)
  in
  let conflicts = ref (Bitblast.solver_stats ctx).Sat.conflicts in
  let stats =
    {
      time_s = Unix.gettimeofday () -. t0;
      n_obligations = List.length p.Property.obligations;
      cnf_vars = !vars;
      cnf_clauses = !clauses;
      conflicts = !conflicts;
    }
  in
  (verdict, stats)
