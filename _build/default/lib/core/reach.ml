open Ilv_expr
open Ilv_rtl
open Ilv_sat

type result =
  | Holds
  | Violated of (string -> Sort.t -> Value.t)
  | Too_large

type stats = { iterations : int; reachable_bdd_size : int }

(* Variable layout: state bit j has current-state BDD variable 2j and
   next-state variable 2j+1 (interleaved, so the transition relation's
   next_i <-> f_i conjuncts stay narrow); input bits follow after all
   state variables. *)

type layout = {
  reg_offsets : (string * (int * int)) list; (* name -> (bit offset, width) *)
  n_state_bits : int;
  input_offsets : (string * (int * int)) list;
  n_input_bits : int;
}

let bit_count_of_sort = Sort.bit_count

let layout_of (rtl : Rtl.t) =
  let reg_offsets, n_state_bits =
    List.fold_left
      (fun (acc, off) (r : Rtl.register) ->
        let n = bit_count_of_sort r.Rtl.sort in
        ((r.Rtl.reg_name, (off, n)) :: acc, off + n))
      ([], 0) rtl.Rtl.registers
  in
  let input_offsets, n_input_bits =
    List.fold_left
      (fun (acc, off) (name, sort) ->
        let n = bit_count_of_sort sort in
        ((name, (off, n)) :: acc, off + n))
      ([], 0) rtl.Rtl.inputs
  in
  { reg_offsets = List.rev reg_offsets; n_state_bits;
    input_offsets = List.rev input_offsets; n_input_bits }

let current_var _lay j = 2 * j
let next_var _lay j = (2 * j) + 1
let input_var lay j = (2 * lay.n_state_bits) + j

module C = Circuits.Make (struct
  type man = Bdd.man
  type b = Bdd.t

  let tt = Bdd.tt
  let ff = Bdd.ff
  let neg = Bdd.neg
  let mk_and = Bdd.mk_and
  let mk_or = Bdd.mk_or
  let mk_xor = Bdd.mk_xor
  let mk_iff = Bdd.mk_iff
  let mk_ite = Bdd.mk_ite
end)

(* Pack a sort's bits (bv: lsb first; mem: word-major) into [bits]. *)
let bits_of_sort man sort var_of_bit =
  match sort with
  | Sort.Bool -> C.B_bool (Bdd.var man (var_of_bit 0))
  | Sort.Bitvec w -> C.B_vec (Array.init w (fun i -> Bdd.var man (var_of_bit i)))
  | Sort.Mem { addr_width; data_width } ->
    C.B_mem
      {
        C.addr_width;
        words =
          Array.init (1 lsl addr_width) (fun i ->
              Array.init data_width (fun j ->
                  Bdd.var man (var_of_bit ((i * data_width) + j))));
      }

let flatten_bits = function
  | C.B_bool b -> [| b |]
  | C.B_vec v -> v
  | C.B_mem { C.words; _ } -> Array.concat (Array.to_list words)

let value_bits v =
  match v with
  | Value.V_bool b -> [ b ]
  | Value.V_bv bv -> Bitvec.to_bits bv
  | Value.V_mem m ->
    List.concat
      (List.init
         (1 lsl m.Value.addr_width)
         (fun i ->
           Bitvec.to_bits
             (Value.mem_read m (Bitvec.of_int ~width:m.Value.addr_width i))))

let analyze ?(max_bits = 40) ~(rtl : Rtl.t) p =
  let lay = layout_of rtl in
  if lay.n_state_bits + lay.n_input_bits > max_bits then (Too_large, None)
  else begin
    let man = Bdd.manager () in
    (* compile with registers at current-state vars and inputs at input
       vars; wires are inlined through substitution *)
    let wire_env =
      List.fold_left
        (fun env (n, e) -> (n, Subst.apply env e) :: env)
        [] rtl.Rtl.wires
    in
    let inline e = Subst.apply wire_env e in
    let fresh_var name sort =
      match List.assoc_opt name lay.reg_offsets with
      | Some (off, _) ->
        bits_of_sort man sort (fun i -> current_var lay (off + i))
      | None -> (
        match List.assoc_opt name lay.input_offsets with
        | Some (off, _) ->
          bits_of_sort man sort (fun i -> input_var lay (off + i))
        | None -> invalid_arg ("Reach: unknown name " ^ name))
    in
    let compiler = C.compiler man ~fresh_var in
    (* transition relation: next_i <-> f_i for every state bit *)
    let trans =
      List.fold_left
        (fun acc (r : Rtl.register) ->
          let off, _ = List.assoc r.Rtl.reg_name lay.reg_offsets in
          let f_bits = flatten_bits (C.bits compiler (inline r.Rtl.next)) in
          let conj = ref acc in
          Array.iteri
            (fun i f ->
              let nv = Bdd.var man (next_var lay (off + i)) in
              conj := Bdd.mk_and man !conj (Bdd.mk_iff man nv f))
            f_bits;
          !conj)
        (Bdd.tt man) rtl.Rtl.registers
    in
    (* initial states *)
    let init =
      List.fold_left
        (fun acc (r : Rtl.register) ->
          let off, _ = List.assoc r.Rtl.reg_name lay.reg_offsets in
          List.fold_left
            (fun (acc, i) b ->
              let v = Bdd.var man (current_var lay (off + i)) in
              ( Bdd.mk_and man acc (if b then v else Bdd.neg man v),
                i + 1 ))
            (acc, 0)
            (value_bits (Rtl.init_value r))
          |> fst)
        (Bdd.tt man) rtl.Rtl.registers
    in
    let currents = List.init lay.n_state_bits (fun j -> current_var lay j) in
    let inputs = List.init lay.n_input_bits (fun j -> input_var lay j) in
    let quantified = currents @ inputs in
    let image s =
      let next_only = Bdd.and_exists man quantified s trans in
      Bdd.rename man (fun v -> v - 1) next_only
    in
    let rec fixpoint n r =
      let r' = Bdd.mk_or man r (image r) in
      if Bdd.equal r' r then (n, r) else fixpoint (n + 1) r'
    in
    let iterations, reachable = fixpoint 0 init in
    let bad = Bdd.neg man (C.bool_bit compiler (inline p)) in
    let witness = Bdd.mk_and man reachable bad in
    let stats =
      Some { iterations; reachable_bdd_size = Bdd.size reachable }
    in
    match Bdd.any_sat witness with
    | None -> (Holds, stats)
    | Some assignment ->
      let bit_value var =
        match List.assoc_opt var assignment with
        | Some b -> b
        | None -> false
      in
      let model name sort =
        let decode off var_of =
          let n = bit_count_of_sort sort in
          let bools = List.init n (fun i -> bit_value (var_of (off + i))) in
          match sort with
          | Sort.Bool -> Value.of_bool (List.hd bools)
          | Sort.Bitvec _ -> Value.of_bv (Bitvec.of_bits bools)
          | Sort.Mem { addr_width; data_width } ->
            let m =
              ref
                (Value.to_mem
                   (Value.mem_const ~addr_width
                      ~default:(Bitvec.zero data_width)))
            in
            List.iteri
              (fun i b ->
                if b then begin
                  let word_i = i / data_width and bit_i = i mod data_width in
                  let addr = Bitvec.of_int ~width:addr_width word_i in
                  let old = Value.mem_read !m addr in
                  let updated =
                    Bitvec.logor old
                      (Bitvec.shl (Bitvec.one data_width) bit_i)
                  in
                  m := Value.mem_write !m addr updated
                end)
              bools;
            Value.V_mem !m
        in
        match List.assoc_opt name lay.reg_offsets with
        | Some (off, _) -> decode off (current_var lay)
        | None -> (
          match List.assoc_opt name lay.input_offsets with
          | Some (off, _) -> decode off (input_var lay)
          | None -> Value.default_of_sort sort)
      in
      (Violated model, stats)
  end

let check ?max_bits ~rtl p = fst (analyze ?max_bits ~rtl p)
