(** BDD-based symbolic reachability for small RTL designs.

    The classic fixed-point model-checking algorithm: compute the exact
    set of reachable states from reset by iterating the transition
    image, then check a safety property on it.  Complementary to
    {!Invariant}: induction needs a strong enough invariant, BMC only
    covers bounded depth — reachability is exact, but only tractable
    for designs with a small number of state and input bits.

    The property may mention registers, wires and inputs; a violation
    is a {e reachable} state together with an input valuation. *)

open Ilv_expr
open Ilv_rtl

type result =
  | Holds  (** true in every reachable state, for every input *)
  | Violated of (string -> Sort.t -> Value.t)
      (** witness: reachable register values plus inputs *)
  | Too_large  (** the design exceeds the bit budget *)

val check : ?max_bits:int -> rtl:Rtl.t -> Expr.t -> result
(** [check ~rtl p] decides AG p.  [max_bits] (default 40) bounds
    [state_bits + input_bits]; larger designs return [Too_large]
    rather than risking BDD blow-up. *)

type stats = {
  iterations : int;  (** image steps to the fixed point *)
  reachable_bdd_size : int;
}

val analyze : ?max_bits:int -> rtl:Rtl.t -> Expr.t -> result * stats option
(** Like {!check}, also reporting fixed-point statistics. *)
