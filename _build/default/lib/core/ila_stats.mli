(** Size metrics for ILA models (the paper's "ILA Model Statistics").

    "ILA Size (LoC)" is the exact line count of the model's textual
    form ({!Ila_text.print}) — the analogue of the ILAng program that
    describes the model. *)

type t = {
  loc : int;
  state_bits : int;
  n_ports : int;
  n_instructions : int;  (** leaf (sub-)instructions over all ports *)
  n_inputs : int;
}

val of_port : Ila.t -> t
val of_module : Module_ila.t -> t
val pp : Format.formatter -> t -> unit
