(** Automatic generation of the complete property set for one port.

    Given a port-ILA, the RTL design and a refinement map, produces one
    refinement property per leaf (sub-)instruction — the complete set
    of functional correctness properties in the sense of the paper: the
    ILA specifies every command, and every command's effect on every
    mapped architectural state is checked. *)

val ila_var : string -> string
(** Namespaced base-variable name for an ILA state or input. *)

val generate : ila:Ila.t -> rtl:Ilv_rtl.Rtl.t -> refmap:Refmap.t -> Property.t list
(** One property per leaf instruction, in declaration order.
    @raise Refmap.Invalid_refmap if an instruction lacks a map entry
    (cannot happen for maps built by {!Refmap.make}). *)

val generate_for :
  ila:Ila.t -> rtl:Ilv_rtl.Rtl.t -> refmap:Refmap.t -> Ila.instruction -> Property.t
(** The property of a single leaf instruction. *)
