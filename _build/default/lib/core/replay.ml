open Ilv_expr
open Ilv_rtl

type outcome =
  | Confirmed of string
  | Not_reproduced
  | Inapplicable of string

(* Evaluation environment at one instant: registers, that cycle's
   inputs, and the combinational wires computed from them. *)
let instant_env (rtl : Rtl.t) ~regs ~inputs =
  let env =
    List.fold_left (fun acc (n, v) -> Eval.env_add n v acc) regs inputs
  in
  List.fold_left
    (fun env (name, e) -> Eval.env_add name (Eval.eval env e) env)
    env rtl.Rtl.wires

let owned_states (ila : Ila.t) =
  List.concat_map
    (fun (i : Ila.instruction) -> List.map fst i.Ila.updates)
    (Ila.leaf_instructions ila)
  |> List.sort_uniq String.compare

let confirm ~ila ~rtl ~(refmap : Refmap.t) (trace : Trace.t) =
  match trace.Trace.cycles with
  | [] -> Inapplicable "trace has no cycles"
  | (c0, nets0) :: _ ->
    if c0 <> 0 then Inapplicable "trace does not start at cycle 0"
    else begin
      (* Split the cycle-0 nets into registers and inputs.  A register
         or input absent from the trace was never constrained by the
         failing obligation (it did not reach the solver), so its value
         is irrelevant to the violation: default it to zeros. *)
      let regs0 =
        List.fold_left
          (fun acc (r : Rtl.register) ->
            let v =
              match List.assoc_opt r.Rtl.reg_name nets0 with
              | Some v when Sort.equal (Value.sort v) r.Rtl.sort -> v
              | Some _ | None -> Value.default_of_sort r.Rtl.sort
            in
            Eval.env_add r.Rtl.reg_name v acc)
          Eval.env_empty rtl.Rtl.registers
      in
      let inputs_at c =
        let nets =
          match List.assoc_opt c trace.Trace.cycles with
          | Some nets -> nets
          | None -> []
        in
        List.map
          (fun (n, sort) ->
            match List.assoc_opt n nets with
            | Some v when Sort.equal (Value.sort v) sort -> (n, v)
            | Some _ | None -> (n, Value.default_of_sort sort))
          rtl.Rtl.inputs
      in
      let inputs0 = inputs_at 0 in
      (* ILA side: mapped start state and command, one step *)
      (
        let env0 = instant_env rtl ~regs:regs0 ~inputs:inputs0 in
        let start_state =
          Eval.env_of_list
            (List.map
               (fun (s, e) -> (s, Eval.eval env0 e))
               refmap.Refmap.state_map)
        in
        let command =
          List.map
            (fun (w, e) -> (w, Eval.eval env0 e))
            refmap.Refmap.interface_map
        in
        let ila_sim = Ila_sim.create ila in
        Ila_sim.set_state ila_sim start_state;
        match Ila_sim.step ila_sim command with
        | Ila_sim.No_instruction ->
          Inapplicable "no instruction decodes at cycle 0"
        | Ila_sim.Ambiguous _ -> Inapplicable "ambiguous decode at cycle 0"
        | Ila_sim.Stepped instr_name -> (
            (* the finish depth comes from the instruction map *)
            let m =
              match Refmap.find_instr_map refmap instr_name with
              | Some m -> m
              | None -> invalid_arg "Replay: instruction without map"
            in
            let sim = Sim.create rtl in
            Sim.set_registers sim regs0;
            let env_now c =
              instant_env rtl ~regs:(Sim.registers_env sim)
                ~inputs:(inputs_at c)
            in
            let finish_cycle =
              match m.Refmap.finish with
              | Refmap.After_cycles k ->
                for c = 0 to k - 1 do
                  Sim.cycle sim (inputs_at c)
                done;
                Some k
              | Refmap.Within { bound; condition } ->
                (* drive until the finish condition first holds *)
                let rec go c =
                  if c > bound then None
                  else begin
                    Sim.cycle sim (inputs_at (c - 1));
                    if Eval.eval_bool (env_now c) condition then Some c
                    else go (c + 1)
                  end
                in
                go 1
            in
            match finish_cycle with
            | None ->
              (* the instruction never finished: exactly the violated
                 termination obligation *)
              Confirmed "<termination>"
            | Some k -> (
              let env_k = env_now k in
              let owned = owned_states ila in
              let diverging =
                List.find_opt
                  (fun (s, e) ->
                    List.mem s owned
                    && not
                         (Value.equal
                            (Ila_sim.state ila_sim s)
                            (Eval.eval env_k e)))
                  refmap.Refmap.state_map
              in
              match diverging with
              | Some (s, _) -> Confirmed s
              | None -> Not_reproduced)))
    end
