(** Symbolic unrolling of an RTL design over time.

    Cycle-0 registers and every cycle's inputs become free base
    variables (namespaced ["rtl.<name>@<cycle>"]); wires and later-cycle
    registers become expressions over those.  The refinement checker
    evaluates RTL-side refinement-map expressions "at cycle c" by
    substituting through this unrolling. *)

open Ilv_rtl

open Ilv_expr

type t

val create : Rtl.t -> t

val base_var : string -> int -> string
(** [base_var name cycle] is the namespaced base-variable name. *)

val net : t -> cycle:int -> string -> Expr.t
(** The symbolic value of an input, register or wire at a cycle.
    @raise Not_found for unknown names. *)

val at_cycle : t -> cycle:int -> Expr.t -> Expr.t
(** Substitutes every RTL name in an expression (a refinement-map
    right-hand side) with its symbolic value at the cycle. *)

val base_vars_used : t -> (string * Sort.t) list
(** Base variables materialized so far (registers at cycle 0, inputs at
    every unrolled cycle), for model decoding. *)
