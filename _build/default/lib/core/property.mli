(** Automatically generated refinement properties.

    One property is generated per leaf (sub-)instruction.  It has the
    shape of the paper's Fig. 5: {e starting from corresponding
    equivalent states, after executing the specified instruction, the
    corresponding states are again equivalent at the finish cycle.}

    A property is a set of closed formulas over base variables
    ([ila.*] for the ILA start state and inputs, [rtl.*@c] for the
    unrolled RTL): assumptions plus one or more obligations.  The
    property holds iff for every obligation, [assumptions ∧ guard ∧
    ¬goal] is unsatisfiable. *)

open Ilv_expr

type obligation = {
  at_cycle : int;
  guard : Expr.t;
      (** e.g. "the finish condition first holds at this cycle" *)
  goal : Expr.t;  (** the architectural equivalence at this cycle *)
  label : string;
}

type display = {
  equal_states : (string * string) list;
  corresponding_inputs : (string * string) list;
  start_condition : string;
  finish_condition : string;
  checked_states : (string * string) list;
}
(** Human-readable pieces, mirroring the coloured regions of Fig. 5. *)

type t = {
  prop_name : string;
  port : string;
  instr : Ila.instruction;
  assumptions : Expr.t list;
  obligations : obligation list;
  n_cycles : int;  (** deepest cycle referenced *)
  ila_bindings : (string * Expr.t) list;
      (** each ILA state/input, as the cycle-0 RTL expression it was
          substituted with — the generator eliminates ILA variables by
          substituting the refinement map (sound and complete, since the
          start-state constraints are pure equalities), which lets the
          bit-blaster share structure between the two sides; these
          bindings let counterexample traces recover the ILA view *)
  display : display;
}

val pp : Format.formatter -> t -> unit
(** Renders the property in the style of the paper's example: assumed
    equivalences and conditions, then the implication to be checked. *)
