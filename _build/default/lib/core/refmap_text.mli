(** A textual surface format for refinement maps — the counterpart of
    the JSON refinement maps the paper's tooling consumes ("Ref-map
    Size (LoC)" counts exactly such a file).

    One declaration per line; [#] starts a comment.  Expressions use
    the s-expression syntax of {!Ilv_expr.Pp_expr}/{!Ilv_expr.Parse}
    over RTL net names; instruction names are double-quoted because
    integrated instructions contain spaces:

    {v
    # refinement map for the decoder port
    state current_word = op
    state step         = status
    input wait         = wait_data
    instruction "stall"        after 1
    instruction "SEND" start (not busy) within 22 until (not busy)
    invariant (bvule count_q 0x10:5)
    assume-step (not p1_valid)
    v} *)

exception Syntax_error of string

val print : Refmap.t -> string
(** Renders a refinement map in the surface format; [parse] of the
    result reconstructs an equal map. *)

val loc : Refmap.t -> int
(** Number of non-empty lines of {!print} — the exact counterpart of
    the paper's "Ref-map Size (LoC)" for its JSON files. *)

val parse : ila:Ila.t -> rtl:Ilv_rtl.Rtl.t -> string -> Refmap.t
(** Parses and validates (via {!Refmap.make}) a textual map.
    @raise Syntax_error on malformed lines.
    @raise Ilv_expr.Parse.Parse_error on malformed expressions.
    @raise Refmap.Invalid_refmap if the map does not fit the models. *)
