open Ilv_expr

let ila_var name = "ila." ^ name

let rename_ila e = Subst.rename ila_var e

let generate_for ~ila ~rtl ~refmap (i : Ila.instruction) =
  let m =
    match Refmap.find_instr_map refmap i.Ila.instr_name with
    | Some m -> m
    | None ->
      raise
        (Refmap.Invalid_refmap
           ("no instruction map for " ^ i.Ila.instr_name))
  in
  let u = Unroll.create rtl in
  let at c e = Unroll.at_cycle u ~cycle:c e in
  (* The "equivalent start states" and "corresponding inputs" parts of
     the refinement map are pure equalities between ILA variables and
     cycle-0 RTL expressions, so the ILA variables are eliminated by
     substitution instead of asserting the equalities.  This is exactly
     equivalent, and it lets the bit-blaster share gates between the two
     sides wherever the specification and the implementation use the
     same word-level function (the structural-hashing trick hardware
     model checkers rely on). *)
  let ila_bindings =
    List.map (fun (s, rtl_e) -> (ila_var s, at 0 rtl_e)) refmap.Refmap.state_map
    @ List.map
        (fun (w, rtl_e) -> (ila_var w, at 0 rtl_e))
        refmap.Refmap.interface_map
  in
  let inst e = Subst.apply ila_bindings (rename_ila e) in
  (* start condition: the decode function over ILA names, plus any
     RTL-side start condition from the instruction map *)
  let decode_assumption = inst i.Ila.decode in
  let start_assumption =
    match m.Refmap.start with
    | Some e -> [ at 0 e ]
    | None -> []
  in
  let invariants = List.map (at 0) refmap.Refmap.invariants in
  let max_cycle =
    match m.Refmap.finish with
    | Refmap.After_cycles k -> k
    | Refmap.Within { bound; _ } -> bound
  in
  let step_assumptions =
    List.concat_map
      (fun e ->
        List.init (max 0 (max_cycle - 1)) (fun j -> at (j + 1) e))
      refmap.Refmap.step_assumptions
  in
  let assumptions =
    (decode_assumption :: start_assumption) @ invariants @ step_assumptions
  in
  (* The equivalence goal at cycle k: N_i applied to the ILA state must
     match the state map evaluated at cycle k.  Only the states this
     port *owns* (updates in some instruction) are checked: a state the
     port merely reads is maintained by another port, which may update
     it concurrently — its equivalence is that port's obligation.  For
     single-port modules every mapped state is owned. *)
  let owned =
    List.concat_map
      (fun (j : Ila.instruction) -> List.map fst j.Ila.updates)
      (Ila.leaf_instructions ila)
    |> List.sort_uniq String.compare
  in
  let next_fn = Ila.next_state_fn ila i in
  let goal_at k =
    Build.and_list
      (List.filter_map
         (fun (s, rtl_e) ->
           if not (List.mem s owned) then None
           else
             let ila_next =
               match List.assoc_opt s next_fn with
               | Some e -> inst e
               | None -> assert false
             in
             Some (Build.eq ila_next (at k rtl_e)))
         refmap.Refmap.state_map)
  in
  let obligations, finish_desc =
    match m.Refmap.finish with
    | Refmap.After_cycles k ->
      ( [
          {
            Property.at_cycle = k;
            guard = Build.tt;
            goal = goal_at k;
            label = Printf.sprintf "equivalence after %d cycle(s)" k;
          };
        ],
        Printf.sprintf "%d cycle(s)" k )
    | Refmap.Within { bound; condition } ->
      let cond_at j = at j condition in
      let not_before k =
        Build.and_list (List.init (k - 1) (fun j -> Build.not_ (cond_at (j + 1))))
      in
      let per_cycle =
        List.init bound (fun idx ->
            let k = idx + 1 in
            {
              Property.at_cycle = k;
              guard = Build.( &&: ) (not_before k) (cond_at k);
              goal = goal_at k;
              label = Printf.sprintf "equivalence when finishing at cycle %d" k;
            })
      in
      let termination =
        {
          Property.at_cycle = bound;
          guard = not_before (bound + 1);
          goal = Build.ff;
          label = Printf.sprintf "instruction finishes within %d cycles" bound;
        }
      in
      ( per_cycle @ [ termination ],
        Printf.sprintf "first (%s) within %d cycles"
          (Pp_expr.infix_to_string condition)
          bound )
  in
  let display =
    {
      Property.equal_states =
        List.map
          (fun (s, e) -> (ila_var s, "rtl." ^ Pp_expr.infix_to_string e))
          refmap.Refmap.state_map;
      corresponding_inputs =
        List.map
          (fun (w, e) -> (ila_var w, "rtl." ^ Pp_expr.infix_to_string e))
          refmap.Refmap.interface_map;
      start_condition = Pp_expr.infix_to_string i.Ila.decode;
      finish_condition = finish_desc;
      checked_states =
        List.filter_map
          (fun (s, e) ->
            if not (List.mem s owned) then None
            else
              let ila_next =
                match List.assoc_opt s next_fn with
                | Some e -> "ila'." ^ Pp_expr.infix_to_string e
                | None -> assert false
              in
              Some (ila_next, "rtl." ^ Pp_expr.infix_to_string e ^ "@finish"))
          refmap.Refmap.state_map;
    }
  in
  {
    Property.prop_name = ila.Ila.name ^ ":" ^ i.Ila.instr_name;
    port = ila.Ila.name;
    instr = i;
    assumptions;
    obligations;
    n_cycles = max_cycle;
    ila_bindings;
    display;
  }

let generate ~ila ~rtl ~refmap =
  List.map (generate_for ~ila ~rtl ~refmap) (Ila.leaf_instructions ila)
