open Ilv_expr
open Ilv_rtl

let derive (rtl : Rtl.t) =
  (* inline the combinational wires into the register updates: wires
     are already topologically ordered, so a single forward pass
     suffices *)
  let wire_env =
    List.fold_left
      (fun env (n, e) -> (n, Subst.apply env e) :: env)
      [] rtl.Rtl.wires
  in
  let inline e = Subst.apply wire_env e in
  let states =
    List.map
      (fun (r : Rtl.register) ->
        Ila.state r.Rtl.reg_name r.Rtl.sort ~kind:Ila.Internal
          ~init:(Rtl.init_value r) ())
      rtl.Rtl.registers
  in
  let updates =
    List.map
      (fun (r : Rtl.register) -> (r.Rtl.reg_name, inline r.Rtl.next))
      rtl.Rtl.registers
  in
  let ila =
    Ila.make
      ~name:(rtl.Rtl.name ^ "-step")
      ~inputs:rtl.Rtl.inputs ~states
      ~instructions:[ Ila.instr "STEP" ~decode:Build.tt ~updates () ]
  in
  let refmap =
    Refmap.make ~ila ~rtl
      ~state_map:
        (List.map
           (fun (r : Rtl.register) ->
             (r.Rtl.reg_name, Expr.var r.Rtl.reg_name r.Rtl.sort))
           rtl.Rtl.registers)
      ~interface_map:
        (List.map (fun (n, sort) -> (n, Expr.var n sort)) rtl.Rtl.inputs)
      ~instruction_maps:[ Refmap.imap "STEP" (Refmap.After_cycles 1) ]
      ()
  in
  (ila, refmap)
