open Ilv_rtl
open Ilv_expr

type finish =
  | After_cycles of int
  | Within of { bound : int; condition : Expr.t }

type instr_map = { instr : string; start : Expr.t option; finish : finish }

type t = {
  state_map : (string * Expr.t) list;
  interface_map : (string * Expr.t) list;
  instruction_maps : instr_map list;
  invariants : Expr.t list;
  step_assumptions : Expr.t list;
}

exception Invalid_refmap of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_refmap s)) fmt

let imap instr ?start finish = { instr; start; finish }

let rtl_sort (rtl : Rtl.t) n =
  match Rtl.input_sort rtl n with
  | Some s -> Some s
  | None -> (
    match Rtl.register_sort rtl n with
    | Some s -> Some s
    | None -> Option.map Expr.sort (Rtl.wire_expr rtl n))

let check_rtl_expr rtl context e =
  List.iter
    (fun (v, s) ->
      match rtl_sort rtl v with
      | None -> fail "%s references unknown RTL name %s" context v
      | Some s' ->
        if not (Sort.equal s s') then
          fail "%s uses RTL name %s at sort %a, declared %a" context v Sort.pp
            s Sort.pp s')
    (Expr.vars e)

let make ~ila ~rtl ~state_map ~interface_map ~instruction_maps
    ?(invariants = []) ?(step_assumptions = []) () =
  (* state map: total, no duplicates, sorts agree *)
  List.iter
    (fun (s : Ila.state) ->
      match
        List.filter (fun (n, _) -> n = s.Ila.state_name) state_map
      with
      | [] -> fail "state map misses ILA state %s" s.Ila.state_name
      | [ (_, e) ] ->
        if not (Sort.equal (Expr.sort e) s.Ila.sort) then
          fail "state map entry for %s has sort %a, state is %a"
            s.Ila.state_name Sort.pp (Expr.sort e) Sort.pp s.Ila.sort;
        check_rtl_expr rtl ("state map entry for " ^ s.Ila.state_name) e
      | _ -> fail "state map maps %s twice" s.Ila.state_name)
    ila.Ila.states;
  List.iter
    (fun (n, _) ->
      if Ila.find_state ila n = None then
        fail "state map mentions unknown ILA state %s" n)
    state_map;
  (* interface map: total over ILA inputs *)
  List.iter
    (fun (n, sort) ->
      match List.filter (fun (n', _) -> n' = n) interface_map with
      | [] -> fail "interface map misses ILA input %s" n
      | [ (_, e) ] ->
        if not (Sort.equal (Expr.sort e) sort) then
          fail "interface map entry for %s has wrong sort" n;
        check_rtl_expr rtl ("interface map entry for " ^ n) e
      | _ -> fail "interface map maps %s twice" n)
    ila.Ila.inputs;
  List.iter
    (fun (n, _) ->
      if List.assoc_opt n ila.Ila.inputs = None then
        fail "interface map mentions unknown ILA input %s" n)
    interface_map;
  (* instruction map: total over leaf instructions *)
  List.iter
    (fun (i : Ila.instruction) ->
      match
        List.filter (fun m -> m.instr = i.Ila.instr_name) instruction_maps
      with
      | [] -> fail "instruction map misses %s" i.Ila.instr_name
      | [ m ] -> (
        (match m.start with
        | Some e ->
          if not (Sort.is_bool (Expr.sort e)) then
            fail "start condition of %s is not boolean" m.instr;
          check_rtl_expr rtl ("start condition of " ^ m.instr) e
        | None -> ());
        match m.finish with
        | After_cycles n ->
          if n < 1 then fail "finish of %s must be >= 1 cycle" m.instr
        | Within { bound; condition } ->
          if bound < 1 then fail "finish bound of %s must be >= 1" m.instr;
          if not (Sort.is_bool (Expr.sort condition)) then
            fail "finish condition of %s is not boolean" m.instr;
          check_rtl_expr rtl ("finish condition of " ^ m.instr) condition)
      | _ -> fail "instruction map maps %s twice" i.Ila.instr_name)
    (Ila.leaf_instructions ila);
  List.iter
    (fun m ->
      match Ila.find_instruction ila m.instr with
      | None -> fail "instruction map mentions unknown instruction %s" m.instr
      | Some i ->
        if
          i.Ila.updates = [] && Ila.sub_instructions ila i.Ila.instr_name <> []
        then
          fail
            "instruction map entry for %s: it is a grouping header; map the \
             sub-instructions instead"
            m.instr)
    instruction_maps;
  List.iter
    (fun e ->
      if not (Sort.is_bool (Expr.sort e)) then fail "invariant is not boolean";
      check_rtl_expr rtl "invariant" e)
    invariants;
  List.iter
    (fun e ->
      if not (Sort.is_bool (Expr.sort e)) then
        fail "step assumption is not boolean";
      check_rtl_expr rtl "step assumption" e)
    step_assumptions;
  { state_map; interface_map; instruction_maps; invariants; step_assumptions }

let find_instr_map t name =
  List.find_opt (fun m -> m.instr = name) t.instruction_maps

let loc t =
  let expr_lines e =
    let n = Pp_expr.line_count e in
    if n <= 1 then 1 else n
  in
  List.fold_left (fun acc (_, e) -> acc + expr_lines e) 0 t.state_map
  + List.fold_left (fun acc (_, e) -> acc + expr_lines e) 0 t.interface_map
  + List.fold_left
      (fun acc m ->
        acc + 2
        + (match m.start with Some e -> expr_lines e - 1 | None -> 0)
        +
        match m.finish with
        | After_cycles _ -> 0
        | Within { condition; _ } -> expr_lines condition - 1)
      0 t.instruction_maps
  + List.fold_left (fun acc e -> acc + expr_lines e) 0 t.invariants
  + List.fold_left (fun acc e -> acc + expr_lines e) 0 t.step_assumptions

let pp fmt t =
  let open Format in
  fprintf fmt "@[<v>-- state map --@,";
  List.iter
    (fun (s, e) -> fprintf fmt "  %-18s %s@," s (Pp_expr.infix_to_string e))
    t.state_map;
  fprintf fmt "-- interface map --@,";
  List.iter
    (fun (s, e) -> fprintf fmt "  %-18s %s@," s (Pp_expr.infix_to_string e))
    t.interface_map;
  fprintf fmt "-- instruction map --@,";
  List.iter
    (fun m ->
      fprintf fmt "  instruction: %s@," m.instr;
      (match m.start with
      | None -> fprintf fmt "    start condition:  decode@,"
      | Some e ->
        fprintf fmt "    start condition:  %s@," (Pp_expr.infix_to_string e));
      match m.finish with
      | After_cycles n -> fprintf fmt "    finish condition: %d cycle(s)@," n
      | Within { bound; condition } ->
        fprintf fmt "    finish condition: first %s within %d cycles@,"
          (Pp_expr.infix_to_string condition)
          bound)
    t.instruction_maps;
  (match t.invariants with
  | [] -> ()
  | invs ->
    fprintf fmt "-- invariants --@,";
    List.iter
      (fun e -> fprintf fmt "  %s@," (Pp_expr.infix_to_string e))
      invs);
  (match t.step_assumptions with
  | [] -> ()
  | steps ->
    fprintf fmt "-- step assumptions --@,";
    List.iter
      (fun e -> fprintf fmt "  %s@," (Pp_expr.infix_to_string e))
      steps);
  fprintf fmt "@]"
