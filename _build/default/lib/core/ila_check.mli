(** Model-level sanity checks on an ILA's decode functions, decided by
    the SAT backend.

    These realize the "complete functional specification" claim: the
    leaf instructions of a port must cover every command the interface
    can present ({!coverage}) and must not overlap ambiguously
    ({!determinism}).  Both checks admit an [assuming] environment
    constraint (e.g. "requests are one-hot"). *)

open Ilv_expr

type coverage_result =
  | Covered
  | Uncovered of (string -> Sort.t -> Value.t)
      (** a witness command/state no instruction decodes *)

type determinism_result =
  | Deterministic
  | Overlap of {
      instr_a : string;
      instr_b : string;
      witness : string -> Sort.t -> Value.t;
    }

val coverage : ?assuming:Expr.t list -> Ila.t -> coverage_result
(** Is the disjunction of all leaf decode functions valid (under the
    assumptions)?  If not, returns a witness valuation — a command at
    the interface for which the specification says nothing. *)

val determinism : ?assuming:Expr.t list -> Ila.t -> determinism_result
(** Are leaf decode functions pairwise disjoint (under the
    assumptions)?  If not, two instructions can trigger at once. *)
