(** Instruction-Level Abstractions (ILAs) for general hardware modules.

    An ILA is the five-element tuple ⟨S, W, S₀, D, N⟩ of the paper:
    architectural states [S], inputs [W], initial values [S₀], and per
    instruction a decode function [D_i] (when does this command trigger)
    and a next-state function [N_i] (how the architectural state
    updates).

    Sub-instructions — the atomic, architecturally visible steps of a
    multi-step instruction — are ordinary instructions whose [parent]
    names the instruction they belong to.  Verification and composition
    operate at the sub-instruction level, the atomic unit.

    A module with several command interfaces is modeled as one ILA per
    port (a "port-ILA"); see {!Compose} for forming the module-ILA. *)

open Ilv_expr

type state_kind =
  | Output  (** architectural state visible as an output pin *)
  | Internal  (** persistent but not a pin ("other states") *)

type state = {
  state_name : string;
  sort : Sort.t;
  kind : state_kind;
  init : Value.t option;  (** S₀ entry; all-zeros when [None] *)
}

type instruction = {
  instr_name : string;
  parent : string option;
      (** [Some i] marks this as a sub-instruction of instruction [i] *)
  decode : Expr.t;  (** D_i: boolean over states and inputs *)
  updates : (string * Expr.t) list;
      (** N_i: new value of each updated state, over states and inputs;
          states not listed are unchanged *)
}

type t = {
  name : string;
  inputs : (string * Sort.t) list;  (** W *)
  states : state list;  (** S with S₀ *)
  instructions : instruction list;  (** D and N *)
}

exception Invalid_ila of string

val make :
  name:string ->
  inputs:(string * Sort.t) list ->
  states:state list ->
  instructions:instruction list ->
  t
(** Validates and builds an ILA: unique names; decode functions boolean
    over declared states/inputs; updates target declared states with
    matching sorts; sub-instruction parents exist.
    @raise Invalid_ila when malformed. *)

val state : string -> Sort.t -> ?kind:state_kind -> ?init:Value.t -> unit -> state
(** State declaration helper; [kind] defaults to [Output]. *)

val instr :
  string ->
  ?parent:string ->
  decode:Expr.t ->
  updates:(string * Expr.t) list ->
  unit ->
  instruction

val zero_command :
  name:string -> states:state list -> updates:(string * Expr.t) list -> t
(** A "0"-command-interface module (Sec. III-A3 of the paper): a module
    with no explicit command interface, such as a clock generator or a
    transaction initiator.  It is modeled with a single [START]
    instruction triggered by an implicit [power_on] input, whose
    next-state function [updates] describes the free-running step.
    Verify it under the interface assumption [power_on = true]. *)

(** {1 Observation} *)

val find_state : t -> string -> state option
val find_instruction : t -> string -> instruction option
val state_names : t -> string list
val instruction_names : t -> string list

val top_instructions : t -> instruction list
(** Instructions that are not sub-instructions. *)

val sub_instructions : t -> string -> instruction list
(** Sub-instructions of a given instruction, in declaration order. *)

val leaf_instructions : t -> instruction list
(** The atomic units over which composition and verification run: every
    instruction except pure grouping headers (an instruction with
    sub-instructions but no updates of its own, like the decoder's
    [process]).  A parent with updates {e and} sub-instructions is
    itself atomic — the AXI slave's address-commit step, whose data
    beats are its sub-instructions, is the canonical example. *)

val next_state_fn : t -> instruction -> (string * Expr.t) list
(** The complete next-state map of an instruction: every architectural
    state, mapped to its update expression or to itself if unchanged. *)

val state_bits : t -> int
(** Total architectural state bits (the paper's "# of Arch. State Bits"). *)

val updated_state_names : instruction -> string list

val init_env : t -> Eval.env
(** S₀ as an evaluation environment. *)

val pp_sketch : Format.formatter -> t -> unit
(** Renders the ILA in the style of the paper's Figs. 1-3: inputs,
    output states, other states, and the instruction table with updated
    states. *)
