(** A textual surface format for ILA models — the counterpart of the
    ILAng programs the paper writes its models in ("ILA Size (LoC)"
    counts such a file).

    Line-oriented; [#] starts a comment; expressions use the
    s-expression syntax of {!Ilv_expr.Pp_expr}/{!Ilv_expr.Parse} over
    the model's own states and inputs:

    {v
    ila ACC
    input cmd bv2
    input operand bv8
    state acc bv8 output
    state step bv2 internal init 0x0:2
    instruction "ADD" decode (= cmd 0x1:2)
      update acc = (bvadd acc operand)
    end
    instruction "process-s0" parent "process" decode (= step 0x0:2)
    end
    v} *)

exception Syntax_error of string

val print : Ila.t -> string
(** Renders a model; [parse] of the result reconstructs an equal ILA. *)

val loc : Ila.t -> int
(** Non-empty lines of {!print} — the exact "ILA Size (LoC)" of the
    port. *)

val parse : string -> Ila.t
(** Parses and validates (via {!Ila.make}) a textual model.
    @raise Syntax_error on malformed lines.
    @raise Ila.Invalid_ila if the model is inconsistent. *)
