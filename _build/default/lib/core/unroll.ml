open Ilv_rtl
open Ilv_expr
module Str_map = Map.Make (String)

type t = {
  rtl : Rtl.t;
  mutable envs : Expr.t Str_map.t list; (* index = cycle *)
  mutable base : (string * Sort.t) list;
}

let base_var name cycle = Printf.sprintf "rtl.%s@%d" name cycle

let create rtl = { rtl; envs = []; base = [] }

let fresh_base u name sort cycle =
  let n = base_var name cycle in
  if not (List.mem_assoc n u.base) then u.base <- (n, sort) :: u.base;
  Expr.var n sort

(* Build the environment of cycle [c]: registers first (from the
   previous cycle or as fresh base vars), then this cycle's inputs, then
   wires in topological order. *)
let rec env_at u c =
  match List.nth_opt u.envs c with
  | Some env -> env
  | None ->
    let prev = if c = 0 then None else Some (env_at u (c - 1)) in
    let regs =
      List.fold_left
        (fun m (r : Rtl.register) ->
          let value =
            match prev with
            | None -> fresh_base u r.Rtl.reg_name r.Rtl.sort 0
            | Some prev_env ->
              Subst.apply (Str_map.bindings prev_env) r.Rtl.next
          in
          Str_map.add r.Rtl.reg_name value m)
        Str_map.empty u.rtl.Rtl.registers
    in
    let with_inputs =
      List.fold_left
        (fun m (name, sort) -> Str_map.add name (fresh_base u name sort c) m)
        regs u.rtl.Rtl.inputs
    in
    let env =
      List.fold_left
        (fun m (name, e) ->
          Str_map.add name (Subst.apply (Str_map.bindings m) e) m)
        with_inputs u.rtl.Rtl.wires
    in
    (* cycles are materialized in order, so this append stays aligned *)
    assert (List.length u.envs = c);
    u.envs <- u.envs @ [ env ];
    env

let net u ~cycle name =
  match Str_map.find_opt name (env_at u cycle) with
  | Some e -> e
  | None -> raise Not_found

let at_cycle u ~cycle e =
  let env = env_at u cycle in
  Subst.apply (Str_map.bindings env) e

let base_vars_used u = List.rev u.base
