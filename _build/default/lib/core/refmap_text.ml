open Ilv_rtl
open Ilv_expr

exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

(* One-line rendering of an expression. *)
let flat e =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  Format.fprintf fmt "%a@?" Pp_expr.pp e;
  Buffer.contents buf

let quote name = "\"" ^ name ^ "\""

let print (r : Refmap.t) =
  let buf = Buffer.create 1024 in
  let line fmt = Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt in
  List.iter (fun (s, e) -> line "state %s = %s" s (flat e)) r.Refmap.state_map;
  List.iter
    (fun (w, e) -> line "input %s = %s" w (flat e))
    r.Refmap.interface_map;
  List.iter
    (fun (m : Refmap.instr_map) ->
      let start =
        match m.Refmap.start with
        | None -> ""
        | Some e -> Printf.sprintf " start %s" (flat e)
      in
      match m.Refmap.finish with
      | Refmap.After_cycles n ->
        line "instruction %s%s after %d" (quote m.Refmap.instr) start n
      | Refmap.Within { bound; condition } ->
        line "instruction %s%s within %d until %s" (quote m.Refmap.instr)
          start bound (flat condition))
    r.Refmap.instruction_maps;
  List.iter (fun e -> line "invariant %s" (flat e)) r.Refmap.invariants;
  List.iter (fun e -> line "assume-step %s" (flat e)) r.Refmap.step_assumptions;
  Buffer.contents buf

let loc r =
  String.split_on_char '\n' (print r)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* --- parsing --- *)

let rtl_env (rtl : Rtl.t) name =
  match Rtl.input_sort rtl name with
  | Some s -> Some s
  | None -> (
    match Rtl.register_sort rtl name with
    | Some s -> Some s
    | None -> Option.map Expr.sort (Rtl.wire_expr rtl name))

(* Split "instruction "NAME" rest" into the quoted name and the rest. *)
let split_quoted line =
  match String.index_opt line '"' with
  | None -> fail "expected a quoted instruction name: %s" line
  | Some start -> (
    match String.index_from_opt line (start + 1) '"' with
    | None -> fail "unterminated instruction name: %s" line
    | Some stop ->
      let name = String.sub line (start + 1) (stop - start - 1) in
      let rest = String.sub line (stop + 1) (String.length line - stop - 1) in
      (name, String.trim rest))

(* Split an instruction-map tail into its keyword-introduced fields.
   Expressions may contain spaces, so scan for the keywords at
   top-level (parenthesis depth 0). *)
let split_keywords tail =
  let keywords = [ "start"; "after"; "within"; "until" ] in
  let words = String.split_on_char ' ' tail |> List.filter (( <> ) "") in
  let fields = ref [] in
  let current_kw = ref None in
  let current = Buffer.create 32 in
  let depth = ref 0 in
  let flush () =
    match !current_kw with
    | None -> ()
    | Some kw ->
      fields := (kw, String.trim (Buffer.contents current)) :: !fields;
      Buffer.clear current
  in
  List.iter
    (fun w ->
      if !depth = 0 && List.mem w keywords then begin
        flush ();
        current_kw := Some w
      end
      else begin
        String.iter
          (fun c ->
            if c = '(' then incr depth else if c = ')' then decr depth)
          w;
        Buffer.add_string current w;
        Buffer.add_char current ' '
      end)
    words;
  flush ();
  List.rev !fields

let parse ~ila ~rtl text =
  let env = rtl_env rtl in
  let pexpr s = Parse.expr ~env s in
  let state_map = ref [] in
  let interface_map = ref [] in
  let instruction_maps = ref [] in
  let invariants = ref [] in
  let step_assumptions = ref [] in
  let mapping_line rest =
    match String.index_opt rest '=' with
    | None -> fail "expected '=': %s" rest
    | Some i ->
      let name = String.trim (String.sub rest 0 i) in
      let rhs = String.sub rest (i + 1) (String.length rest - i - 1) in
      (name, pexpr rhs)
  in
  let instruction_line rest =
    let name, tail = split_quoted rest in
    let fields = split_keywords tail in
    let start = Option.map pexpr (List.assoc_opt "start" fields) in
    let finish =
      match
        ( List.assoc_opt "after" fields,
          List.assoc_opt "within" fields,
          List.assoc_opt "until" fields )
      with
      | Some n, None, None -> (
        match int_of_string_opt (String.trim n) with
        | Some n -> Refmap.After_cycles n
        | None -> fail "bad cycle count %S" n)
      | None, Some b, Some cond -> (
        match int_of_string_opt (String.trim b) with
        | Some bound -> Refmap.Within { bound; condition = pexpr cond }
        | None -> fail "bad bound %S" b)
      | _ -> fail "instruction %s needs 'after N' or 'within N until E'" name
    in
    instruction_maps := { Refmap.instr = name; start; finish } :: !instruction_maps
  in
  String.split_on_char '\n' text
  |> List.iter (fun raw ->
         let line = String.trim raw in
         if line = "" || line.[0] = '#' then ()
         else
           match String.index_opt line ' ' with
           | None -> fail "malformed line: %s" line
           | Some i -> (
             let keyword = String.sub line 0 i in
             let rest =
               String.trim (String.sub line (i + 1) (String.length line - i - 1))
             in
             match keyword with
             | "state" -> state_map := mapping_line rest :: !state_map
             | "input" -> interface_map := mapping_line rest :: !interface_map
             | "instruction" -> instruction_line rest
             | "invariant" -> invariants := pexpr rest :: !invariants
             | "assume-step" ->
               step_assumptions := pexpr rest :: !step_assumptions
             | other -> fail "unknown keyword %s" other));
  Refmap.make ~ila ~rtl ~state_map:(List.rev !state_map)
    ~interface_map:(List.rev !interface_map)
    ~instruction_maps:(List.rev !instruction_maps)
    ~invariants:(List.rev !invariants)
    ~step_assumptions:(List.rev !step_assumptions)
    ()
