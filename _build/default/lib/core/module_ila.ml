open Ilv_expr

type t = { name : string; ports : Ila.t list }

exception Not_independent of string

(* Ports are independent when no architectural state is *updated* by
   more than one port.  Read-only sharing is fine (e.g. a load port
   observing the buffer another port maintains): reads cannot conflict,
   so no integration is needed — but shared declarations must agree. *)
let make ~name ports =
  if ports = [] then invalid_arg "Module_ila.make: no ports";
  let writers = Hashtbl.create 64 in
  let declared : (string, string * Sort.t) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (port : Ila.t) ->
      List.iter
        (fun (s : Ila.state) ->
          let n = s.Ila.state_name in
          match Hashtbl.find_opt declared n with
          | Some (other, sort) ->
            if not (Sort.equal sort s.Ila.sort) then
              raise
                (Not_independent
                   (Printf.sprintf
                      "state %s is declared with different sorts by ports %s \
                       and %s"
                      n other port.Ila.name))
          | None -> Hashtbl.add declared n (port.Ila.name, s.Ila.sort))
        port.Ila.states;
      List.iter
        (fun (i : Ila.instruction) ->
          List.iter
            (fun (target, _) ->
              match Hashtbl.find_opt writers target with
              | Some other when other <> port.Ila.name ->
                raise
                  (Not_independent
                     (Printf.sprintf
                        "state %s is updated by ports %s and %s; integrate \
                         them first"
                        target other port.Ila.name))
              | Some _ -> ()
              | None -> Hashtbl.add writers target port.Ila.name)
            i.Ila.updates)
        port.Ila.instructions;
      List.iter
        (fun (n, sort) ->
          match Hashtbl.find_opt declared ("input:" ^ n) with
          | Some (other, sort') ->
            if not (Sort.equal sort sort') then
              raise
                (Not_independent
                   (Printf.sprintf
                      "input %s is declared with different sorts by ports %s \
                       and %s"
                      n other port.Ila.name))
          | None -> Hashtbl.add declared ("input:" ^ n) (port.Ila.name, sort))
        port.Ila.inputs)
    ports;
  { name; ports }

let find_port m name = List.find_opt (fun (p : Ila.t) -> p.Ila.name = name) m.ports
let n_ports m = List.length m.ports

let total_instructions m =
  List.fold_left
    (fun acc p -> acc + List.length (Ila.leaf_instructions p))
    0 m.ports

let total_state_bits m =
  List.fold_left (fun acc p -> acc + Ila.state_bits p) 0 m.ports

let pp_sketch fmt m =
  Format.fprintf fmt "@[<v>module-ILA %s: [%s]@,@," m.name
    (String.concat ", " (List.map (fun (p : Ila.t) -> p.Ila.name) m.ports));
  List.iter (fun p -> Format.fprintf fmt "%a@," Ila.pp_sketch p) m.ports;
  Format.fprintf fmt "@]"
