open Ilv_expr

type obligation = {
  at_cycle : int;
  guard : Expr.t;
  goal : Expr.t;
  label : string;
}

type display = {
  equal_states : (string * string) list;
  corresponding_inputs : (string * string) list;
  start_condition : string;
  finish_condition : string;
  checked_states : (string * string) list;
}

type t = {
  prop_name : string;
  port : string;
  instr : Ila.instruction;
  assumptions : Expr.t list;
  obligations : obligation list;
  n_cycles : int;
  ila_bindings : (string * Expr.t) list;
  display : display;
}

let pp fmt p =
  let open Format in
  let d = p.display in
  fprintf fmt "@[<v>property %s (port %s):@," p.prop_name p.port;
  fprintf fmt "  [ (* equivalent start states *)@,";
  List.iter
    (fun (a, b) -> fprintf fmt "    (%s == %s) &&@," a b)
    d.equal_states;
  fprintf fmt "    (* corresponding inputs *)@,";
  List.iter
    (fun (a, b) -> fprintf fmt "    (%s == %s) &&@," a b)
    d.corresponding_inputs;
  fprintf fmt "    (* start condition: %s *)@," d.start_condition;
  fprintf fmt "  ] ->@,";
  fprintf fmt "  (* finish: %s *)@," d.finish_condition;
  fprintf fmt "  X^k [@,";
  List.iteri
    (fun i (a, b) ->
      fprintf fmt "    (%s == %s)%s@," a b
        (if i = List.length d.checked_states - 1 then "" else " &&"))
    d.checked_states;
  fprintf fmt "  ]@]"
