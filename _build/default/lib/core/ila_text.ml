open Ilv_expr

exception Syntax_error of string

let fail fmt = Format.kasprintf (fun s -> raise (Syntax_error s)) fmt

let flat e =
  let buf = Buffer.create 64 in
  let fmt = Format.formatter_of_buffer buf in
  Format.pp_set_margin fmt 1_000_000;
  Format.fprintf fmt "%a@?" Pp_expr.pp e;
  Buffer.contents buf

let sort_to_string = function
  | Sort.Bool -> "bool"
  | Sort.Bitvec w -> Printf.sprintf "bv%d" w
  | Sort.Mem { addr_width; data_width } ->
    Printf.sprintf "mem%dx%d" addr_width data_width

let sort_of_string s =
  let prefixed p = String.length s > String.length p && String.sub s 0 (String.length p) = p in
  if s = "bool" then Sort.Bool
  else if prefixed "bv" then begin
    match int_of_string_opt (String.sub s 2 (String.length s - 2)) with
    | Some w when w >= 1 -> Sort.bv w
    | Some _ | None -> fail "bad sort %s" s
  end
  else if prefixed "mem" then begin
    match String.index_opt s 'x' with
    | None -> fail "bad sort %s" s
    | Some i -> (
      match
        ( int_of_string_opt (String.sub s 3 (i - 3)),
          int_of_string_opt (String.sub s (i + 1) (String.length s - i - 1)) )
      with
      | Some a, Some d -> Sort.mem ~addr_width:a ~data_width:d
      | _ -> fail "bad sort %s" s)
  end
  else fail "bad sort %s" s

let init_to_string v =
  match v with
  | Value.V_bool b -> string_of_bool b
  | Value.V_bv bv -> Bitvec.to_string bv
  | Value.V_mem m ->
    if not (Value.Int_map.is_empty m.Value.assoc) then
      fail "non-uniform memory initial values are not printable"
    else Printf.sprintf "mem-default %s" (Bitvec.to_string m.Value.default)

let print (ila : Ila.t) =
  let buf = Buffer.create 1024 in
  let line fmt =
    Format.kasprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt
  in
  line "ila %s" ila.Ila.name;
  List.iter
    (fun (n, sort) -> line "input %s %s" n (sort_to_string sort))
    ila.Ila.inputs;
  List.iter
    (fun (st : Ila.state) ->
      let kind = match st.Ila.kind with Ila.Output -> "output" | Ila.Internal -> "internal" in
      match st.Ila.init with
      | None -> line "state %s %s %s" st.Ila.state_name (sort_to_string st.Ila.sort) kind
      | Some v ->
        line "state %s %s %s init %s" st.Ila.state_name
          (sort_to_string st.Ila.sort) kind (init_to_string v))
    ila.Ila.states;
  List.iter
    (fun (i : Ila.instruction) ->
      let parent =
        match i.Ila.parent with
        | None -> ""
        | Some p -> Printf.sprintf " parent \"%s\"" p
      in
      line "instruction \"%s\"%s decode %s" i.Ila.instr_name parent
        (flat i.Ila.decode);
      List.iter
        (fun (target, e) -> line "  update %s = %s" target (flat e))
        i.Ila.updates;
      line "end")
    ila.Ila.instructions;
  Buffer.contents buf

let loc ila =
  String.split_on_char '\n' (print ila)
  |> List.filter (fun l -> String.trim l <> "")
  |> List.length

(* --- parsing --- *)

let split_quoted line =
  match String.index_opt line '"' with
  | None -> fail "expected a quoted name: %s" line
  | Some start -> (
    match String.index_from_opt line (start + 1) '"' with
    | None -> fail "unterminated name: %s" line
    | Some stop ->
      let name = String.sub line (start + 1) (stop - start - 1) in
      let rest = String.sub line (stop + 1) (String.length line - stop - 1) in
      (name, String.trim rest))

let parse_init sort text =
  match sort with
  | Sort.Bool -> (
    match String.trim text with
    | "true" -> Value.of_bool true
    | "false" -> Value.of_bool false
    | other -> fail "bad bool initial value %s" other)
  | Sort.Bitvec _ -> Value.of_bv (Bitvec.of_string (String.trim text))
  | Sort.Mem { addr_width; _ } -> (
    match String.split_on_char ' ' (String.trim text) |> List.filter (( <> ) "") with
    | [ "mem-default"; lit ] ->
      Value.mem_const ~addr_width ~default:(Bitvec.of_string lit)
    | _ -> fail "bad memory initial value %s" text)

let parse text =
  let lines =
    String.split_on_char '\n' text
    |> List.map String.trim
    |> List.filter (fun l -> l <> "" && l.[0] <> '#')
  in
  let name = ref None in
  let inputs = ref [] in
  let states = ref [] in
  let instructions = ref [] in
  (* the expression environment grows as declarations are read *)
  let env n =
    match List.assoc_opt n !inputs with
    | Some s -> Some s
    | None ->
      List.find_opt (fun (st : Ila.state) -> st.Ila.state_name = n) !states
      |> Option.map (fun (st : Ila.state) -> st.Ila.sort)
  in
  let pexpr s = Parse.expr ~env s in
  let rec declarations = function
    | [] -> []
    | line :: rest -> (
      let words = String.split_on_char ' ' line |> List.filter (( <> ) "") in
      match words with
      | "ila" :: n :: [] ->
        name := Some n;
        declarations rest
      | [ "input"; n; sort ] ->
        inputs := !inputs @ [ (n, sort_of_string sort) ];
        declarations rest
      | "state" :: n :: sort :: kind :: tail ->
        let sort = sort_of_string sort in
        let kind =
          match kind with
          | "output" -> Ila.Output
          | "internal" -> Ila.Internal
          | other -> fail "bad state kind %s" other
        in
        let init =
          match tail with
          | [] -> None
          | "init" :: init_words ->
            Some (parse_init sort (String.concat " " init_words))
          | _ -> fail "malformed state line: %s" line
        in
        states :=
          !states @ [ { Ila.state_name = n; sort; kind; init } ];
        declarations rest
      | _ -> line :: rest (* instructions begin *))
  in
  let rec instructions_of = function
    | [] -> ()
    | line :: rest when String.length line >= 11 && String.sub line 0 11 = "instruction"
      ->
      let after = String.sub line 11 (String.length line - 11) in
      let instr_name, tail = split_quoted after in
      let parent, tail =
        if String.length tail >= 6 && String.sub tail 0 6 = "parent" then begin
          let p, tail' =
            split_quoted (String.sub tail 6 (String.length tail - 6))
          in
          (Some p, tail')
        end
        else (None, tail)
      in
      let decode =
        if String.length tail >= 6 && String.sub tail 0 6 = "decode" then
          pexpr (String.sub tail 6 (String.length tail - 6))
        else fail "instruction %s: missing decode" instr_name
      in
      (* update lines until "end" *)
      let rec body acc = function
        | [] -> fail "instruction %s: missing end" instr_name
        | "end" :: rest -> (List.rev acc, rest)
        | l :: rest when String.length l >= 6 && String.sub l 0 6 = "update" -> (
          let rest_line = String.sub l 6 (String.length l - 6) in
          match String.index_opt rest_line '=' with
          | None -> fail "malformed update: %s" l
          | Some i ->
            let target = String.trim (String.sub rest_line 0 i) in
            let rhs =
              String.sub rest_line (i + 1) (String.length rest_line - i - 1)
            in
            body ((target, pexpr rhs) :: acc) rest)
        | l :: _ -> fail "unexpected line in instruction body: %s" l
      in
      let updates, rest = body [] rest in
      instructions :=
        !instructions
        @ [ { Ila.instr_name; parent; decode; updates } ];
      instructions_of rest
    | line :: _ -> fail "expected an instruction, got: %s" line
  in
  let rest = declarations lines in
  instructions_of rest;
  match !name with
  | None -> fail "missing 'ila NAME' header"
  | Some name ->
    Ila.make ~name ~inputs:!inputs ~states:!states ~instructions:!instructions
