open Ilv_expr

type state_kind = Output | Internal

type state = {
  state_name : string;
  sort : Sort.t;
  kind : state_kind;
  init : Value.t option;
}

type instruction = {
  instr_name : string;
  parent : string option;
  decode : Expr.t;
  updates : (string * Expr.t) list;
}

type t = {
  name : string;
  inputs : (string * Sort.t) list;
  states : state list;
  instructions : instruction list;
}

exception Invalid_ila of string

let fail fmt = Format.kasprintf (fun s -> raise (Invalid_ila s)) fmt

let state state_name sort ?(kind = Output) ?init () =
  { state_name; sort; kind; init }

let instr instr_name ?parent ~decode ~updates () =
  { instr_name; parent; decode; updates }

module Str_map = Map.Make (String)

let make ~name ~inputs ~states ~instructions =
  let state_sorts =
    List.fold_left
      (fun m s -> Str_map.add s.state_name s.sort m)
      Str_map.empty states
  in
  let all_sorts =
    List.fold_left (fun m (n, s) -> Str_map.add n s m) state_sorts inputs
  in
  (* unique names *)
  let seen = Hashtbl.create 32 in
  List.iter
    (fun n ->
      if Hashtbl.mem seen n then fail "%s: duplicate name %s" name n
      else Hashtbl.add seen n ())
    (List.map fst inputs @ List.map (fun s -> s.state_name) states);
  let seen_instr = Hashtbl.create 32 in
  List.iter
    (fun i ->
      if Hashtbl.mem seen_instr i.instr_name then
        fail "%s: duplicate instruction %s" name i.instr_name
      else Hashtbl.add seen_instr i.instr_name ())
    instructions;
  let check_expr context e =
    List.iter
      (fun (v, s) ->
        match Str_map.find_opt v all_sorts with
        | None -> fail "%s: %s references undeclared name %s" name context v
        | Some s' ->
          if not (Sort.equal s s') then
            fail "%s: %s uses %s at sort %a, declared %a" name context v
              Sort.pp s Sort.pp s')
      (Expr.vars e)
  in
  List.iter
    (fun i ->
      let context = "instruction " ^ i.instr_name in
      if not (Sort.is_bool (Expr.sort i.decode)) then
        fail "%s: %s decode is not boolean" name context;
      check_expr (context ^ " decode") i.decode;
      (match i.parent with
      | Some p ->
        if not (Hashtbl.mem seen_instr p) then
          fail "%s: %s has unknown parent %s" name context p
      | None -> ());
      List.iter
        (fun (target, e) ->
          (match Str_map.find_opt target state_sorts with
          | None -> fail "%s: %s updates non-state %s" name context target
          | Some s ->
            if not (Sort.equal s (Expr.sort e)) then
              fail "%s: %s updates %s (%a) with sort %a" name context target
                Sort.pp s Sort.pp (Expr.sort e));
          check_expr (context ^ " update of " ^ target) e)
        i.updates;
      (* no duplicate update targets *)
      let targets = List.map fst i.updates in
      if List.length targets <> List.length (List.sort_uniq compare targets)
      then fail "%s: %s updates a state twice" name context)
    instructions;
  List.iter
    (fun s ->
      match s.init with
      | Some v when not (Sort.equal (Value.sort v) s.sort) ->
        fail "%s: state %s init has wrong sort" name s.state_name
      | Some _ | None -> ())
    states;
  { name; inputs; states; instructions }

let zero_command ~name ~states ~updates =
  make ~name
    ~inputs:[ ("power_on", Sort.Bool) ]
    ~states
    ~instructions:
      [ instr "START" ~decode:(Expr.var "power_on" Sort.Bool) ~updates () ]

let find_state ila n = List.find_opt (fun s -> s.state_name = n) ila.states

let find_instruction ila n =
  List.find_opt (fun i -> i.instr_name = n) ila.instructions

let state_names ila = List.map (fun s -> s.state_name) ila.states
let instruction_names ila = List.map (fun i -> i.instr_name) ila.instructions

let top_instructions ila =
  List.filter (fun i -> i.parent = None) ila.instructions

let sub_instructions ila parent_name =
  List.filter (fun i -> i.parent = Some parent_name) ila.instructions

(* An instruction is an atomic unit ("leaf") unless it is a pure
   grouping header: it has sub-instructions and no updates of its own
   (like the decoder's "process").  An instruction with both updates and
   sub-instructions (like the AXI slave's RD_ADDR_COMMIT, whose data
   steps are its sub-instructions) is atomic in its own right. *)
let leaf_instructions ila =
  let group_header i =
    i.updates = [] && sub_instructions ila i.instr_name <> []
  in
  List.filter (fun i -> not (group_header i)) ila.instructions

let next_state_fn ila i =
  List.map
    (fun s ->
      match List.assoc_opt s.state_name i.updates with
      | Some e -> (s.state_name, e)
      | None -> (s.state_name, Expr.var s.state_name s.sort))
    ila.states

let state_bits ila =
  List.fold_left (fun acc s -> acc + Sort.bit_count s.sort) 0 ila.states

let updated_state_names i = List.map fst i.updates

let init_env ila =
  Eval.env_of_list
    (List.map
       (fun s ->
         ( s.state_name,
           match s.init with
           | Some v -> v
           | None -> Value.default_of_sort s.sort ))
       ila.states)

let pp_sketch fmt ila =
  let open Format in
  let names l = String.concat ", " l in
  fprintf fmt "@[<v>%s-ILA@," ila.name;
  fprintf fmt "  W (inputs):        %s@," (names (List.map fst ila.inputs));
  let outs, others =
    List.partition (fun s -> s.kind = Output) ila.states
  in
  fprintf fmt "  S (output states): %s@,"
    (names (List.map (fun s -> s.state_name) outs));
  fprintf fmt "  S (other states):  %s@,"
    (names (List.map (fun s -> s.state_name) others));
  fprintf fmt "  I (instructions):@,";
  List.iter
    (fun i ->
      let tag = match i.parent with Some p -> p ^ " / " | None -> "" in
      fprintf fmt "    %-28s updates: %s@," (tag ^ i.instr_name)
        (names (updated_state_names i)))
    ila.instructions;
  fprintf fmt "@]"
