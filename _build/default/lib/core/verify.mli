(** The verification driver (Fig. 4 of the paper).

    For each independent port of a module-ILA: generate the complete
    property set from the refinement map and check every (sub-)
    instruction.  Optionally first run the model-level decode checks
    (coverage / determinism) that back the completeness claim. *)

type instr_result = {
  instr : string;
  port : string;
  verdict : Checker.verdict;
  stats : Checker.stats;
}

type port_report = {
  port_name : string;
  instr_results : instr_result list;
  port_time_s : float;
}

type report = {
  design : string;
  ports : port_report list;
  total_time_s : float;
  first_failure : instr_result option;
}

val proved : report -> bool

val run :
  ?stop_at_first_failure:bool ->
  ?only_ports:string list ->
  name:string ->
  Module_ila.t ->
  Ilv_rtl.Rtl.t ->
  refmap_for:(string -> Refmap.t) ->
  report
(** Verifies the RTL against each port-ILA.  [refmap_for] supplies the
    refinement map of each port by name.  With
    [stop_at_first_failure:true] (default), checking stops at the first
    failing instruction — matching the paper's "Time (bug)" runs. *)

val pp_report : Format.formatter -> report -> unit
