(** Concrete replay of counterexample traces.

    A failing refinement property yields a symbolic counterexample
    (decoded from the SAT model).  [confirm] re-executes it concretely:
    the RTL simulator starts from the trace's cycle-0 registers and is
    driven with the trace's inputs, while the ILA executes the
    instruction once from the mapped start state.  If the mapped
    architectural states disagree at the finish cycle — exactly as the
    checker claimed — the counterexample is {e confirmed}.

    This closes the trust loop around the SAT path: every bug report in
    the test suite is double-checked against the cycle-accurate
    simulator. *)

open Ilv_rtl

type outcome =
  | Confirmed of string  (** the first diverging architectural state *)
  | Not_reproduced
      (** simulation and ILA agree — the trace does not witness a
          violation (would indicate a checker bug) *)
  | Inapplicable of string
      (** the trace cannot be replayed (e.g. the instruction did not
          decode at cycle 0, or trace data is missing) *)

val confirm :
  ila:Ila.t -> rtl:Rtl.t -> refmap:Refmap.t -> Trace.t -> outcome
(** Replays the trace of a failed equivalence obligation. *)
