(** Refinement maps (Fig. 5 of the paper).

    A refinement map connects a port-ILA to the RTL implementation.  It
    has three parts:

    - the {e state map}: for each ILA architectural state, the RTL
      expression (over register/wire/input names) holding the
      corresponding value;
    - the {e interface map}: for each ILA input, the corresponding RTL
      input;
    - the {e instruction map}: for each leaf (sub-)instruction, the
      start condition (defaults to the decode function, with ILA names
      replaced through the maps) and the finish condition — when the
      architectural equivalence must be checked again.

    Additionally, [invariants] restrict the symbolic start states to
    RTL-reachable ones (assumed at cycle 0 — standard in refinement
    checking), and [step_assumptions] constrain the RTL inputs on the
    cycles {e during} a multi-cycle instruction (e.g. "no new command
    arrives until this one finishes"). *)

open Ilv_rtl

open Ilv_expr

type finish =
  | After_cycles of int  (** check exactly [n] cycles after start *)
  | Within of { bound : int; condition : Expr.t }
      (** check at the first cycle <= bound where [condition] (an RTL
          expression) holds; it must hold by [bound] *)

type instr_map = {
  instr : string;
  start : Expr.t option;  (** over RTL names; [None] = decode via maps *)
  finish : finish;
}

type t = {
  state_map : (string * Expr.t) list;
  interface_map : (string * Expr.t) list;
  instruction_maps : instr_map list;
  invariants : Expr.t list;
  step_assumptions : Expr.t list;
}

exception Invalid_refmap of string

val make :
  ila:Ila.t ->
  rtl:Rtl.t ->
  state_map:(string * Expr.t) list ->
  interface_map:(string * Expr.t) list ->
  instruction_maps:instr_map list ->
  ?invariants:Expr.t list ->
  ?step_assumptions:Expr.t list ->
  unit ->
  t
(** Validates the map against both models: every ILA state mapped once
    with matching sort to an expression over RTL names; every ILA input
    mapped; every leaf instruction has an instruction map; RTL-side
    expressions reference only declared RTL names.
    @raise Invalid_refmap when any part is missing or ill-sorted. *)

val imap : string -> ?start:Expr.t -> finish -> instr_map

val find_instr_map : t -> string -> instr_map option

val loc : t -> int
(** Pseudo-LoC of the map (the paper's "Ref-map Size"): one line per
    mapping entry plus the rendered size of non-trivial expressions. *)

val pp : Format.formatter -> t -> unit
(** Fig.-5-style rendering: state map, interface map, instruction map. *)
