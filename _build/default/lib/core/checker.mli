(** Discharging generated properties with the SAT backend.

    Each obligation is decided as a separate query: the property holds
    iff [assumptions ∧ guard ∧ ¬goal] is unsatisfiable for every
    obligation.  A satisfying assignment decodes into a counterexample
    trace.

    Checking can be resource-bounded: a {!budget} limits every
    obligation's SAT query, and an exhausted budget is escalated
    (retried with a larger limit) before the obligation — and the
    property — degrades to the explicit {!Unknown} verdict.  This is
    what keeps large campaigns (e.g. mutation testing, {!Ilv_fault})
    free of hangs. *)

type verdict =
  | Proved
  | Failed of Trace.t  (** with the decoded counterexample *)
  | Unknown of string
      (** no verdict within the budget (or a checking error upstream);
          carries the reason *)

type budget = {
  conflicts : int option;  (** initial per-obligation conflict budget *)
  propagations : int option;
  wall_s : float option;  (** initial per-obligation wall clock, seconds *)
  escalations : int;
      (** extra attempts after the first, each with the limits scaled
          up by [escalation_factor] *)
  escalation_factor : int;
}

val unlimited : budget
(** No bounds: {!check} never returns [Unknown]. *)

val budget :
  ?conflicts:int ->
  ?propagations:int ->
  ?wall_s:float ->
  ?escalations:int ->
  ?escalation_factor:int ->
  unit ->
  budget
(** Defaults: 2 escalations, factor 4 — so an obligation gets up to
    three attempts at 1x, 4x and 16x the initial limits before giving
    up.  Learnt clauses persist across attempts, so escalation resumes
    the search rather than restarting it. *)

val is_unlimited : budget -> bool

type stats = {
  time_s : float;
      (** summed wall clock over the obligations actually checked —
          meaningful even when checking stopped early at a failure *)
  obligation_times_s : float list;
      (** per-obligation wall clock, in checking order; shorter than
          [n_obligations] when checking stopped early *)
  n_obligations : int;
  cnf_vars : int;  (** summed over obligations *)
  cnf_clauses : int;
  conflicts : int;
  restarts : int;  (** solver restarts (from {!Ilv_sat.Sat.stats}) *)
  attempts : int;  (** SAT queries issued, counting escalation retries *)
}

val check :
  ?simplify:bool -> ?budget:budget -> Property.t -> verdict * stats
(** Checks obligations in order; stops at the first failure.  An
    obligation that exhausts its (escalated) budget yields [Unknown],
    but later obligations are still checked — a definite [Failed] wins
    over [Unknown].  [simplify] (default true) applies the word-level
    simplifier ({!Ilv_expr.Simp}) to every formula before bit-blasting;
    disabling it is only useful for measuring the simplifier's
    effect. *)
