(** Discharging generated properties with the SAT backend.

    Each obligation is decided as a separate query: the property holds
    iff [assumptions ∧ guard ∧ ¬goal] is unsatisfiable for every
    obligation.  A satisfying assignment decodes into a counterexample
    trace. *)

type verdict =
  | Proved
  | Failed of Trace.t  (** with the decoded counterexample *)

type stats = {
  time_s : float;
  n_obligations : int;
  cnf_vars : int;  (** summed over obligations *)
  cnf_clauses : int;
  conflicts : int;
}

val check : ?simplify:bool -> Property.t -> verdict * stats
(** Checks obligations in order; stops at the first failure.
    [simplify] (default true) applies the word-level simplifier
    ({!Ilv_expr.Simp}) to every formula before bit-blasting; disabling
    it is only useful for measuring the simplifier's effect. *)
