(** A module-ILA: the composition of independent port-ILAs.

    After integrating any ports that share state (see {!Compose}), the
    remaining ports are pairwise independent — no shared states, no
    shared inputs — and the module-ILA is simply their union.  Each port
    is then verified separately against the RTL, instruction by
    instruction. *)

type t = private { name : string; ports : Ila.t list }

exception Not_independent of string
(** Raised when two ports both *update* the same state — such ports
    must be integrated first ({!Compose.integrate}) — or declare a
    shared state/input with incompatible sorts.  Read-only sharing
    (one port updates, others observe) is allowed: reads cannot
    conflict. *)

val make : name:string -> Ila.t list -> t
(** @raise Not_independent if ports conflict.
    @raise Invalid_argument on an empty port list. *)

val find_port : t -> string -> Ila.t option
val n_ports : t -> int

val total_instructions : t -> int
(** Leaf (sub-)instruction count over all ports (the paper's "# of
    insts. (all ports)"). *)

val total_state_bits : t -> int
val pp_sketch : Format.formatter -> t -> unit
