(** Inductive invariant checking and bounded model checking on RTL.

    The refinement properties assume the refinement map's [invariants]
    at cycle 0 to exclude unreachable implementation states.  That is
    only sound if the invariants actually over-approximate the
    reachable states; this module discharges that side condition with
    the standard induction argument, and provides plain BMC for
    debugging RTL assertions.

    Soundness of the overall flow: if [check_inductive] proves every
    refinement-map invariant and the refinement check proves every
    instruction property, then every reachable RTL state related to an
    ILA state by the state map stays related after each instruction. *)

open Ilv_expr
open Ilv_rtl

type counterexample = {
  kind : [ `Base | `Step ];
      (** [`Base]: violated in the initial state; [`Step]: an
          invariant-satisfying state has a successor that violates it *)
  trace : Trace.t;
}

type result = Inductive | Violated of counterexample

val check_inductive : rtl:Rtl.t -> Expr.t list -> result
(** [check_inductive ~rtl invs] checks that the conjunction of [invs]
    (boolean expressions over the design's registers/wires/inputs)
    holds in the reset state and is preserved by every transition.
    The invariants are checked as a conjunction, so they may support
    each other. *)

type bmc_result = Holds_up_to of int | Fails_at of int * Trace.t

val bmc : rtl:Rtl.t -> depth:int -> Expr.t -> bmc_result
(** [bmc ~rtl ~depth p] checks the safety property [p] (over RTL names)
    on all paths of length <= [depth] from reset.  Returns the first
    failing cycle with a trace, or [Holds_up_to depth]. *)
