(** Instruction-level execution of an ILA.

    Each step: evaluate every leaf (sub-)instruction's decode function
    under the current state and the given command; the triggered
    instruction's next-state function updates the architectural state.
    The paper's operational semantics requires exactly one leaf
    instruction per port to trigger for a deterministic model;
    violations are reported. *)

open Ilv_expr

type t

type step_outcome =
  | Stepped of string  (** the (sub-)instruction that executed *)
  | No_instruction  (** no decode function was true: a model gap *)
  | Ambiguous of string list  (** several decodes true simultaneously *)

val create : Ila.t -> t
val reset : t -> unit
val ila : t -> Ila.t

val state : t -> string -> Value.t
(** @raise Not_found for unknown state names. *)

val state_env : t -> Eval.env

val set_state : t -> Eval.env -> unit
(** Overrides the architectural state (used by co-simulation harnesses
    to align the ILA with an implementation state).
    @raise Invalid_argument if a state is missing or ill-sorted. *)

val step : t -> (string * Value.t) list -> step_outcome
(** [step t command] presents one command at the port.  On [Stepped],
    the architectural state has been updated; otherwise it is unchanged.
    @raise Invalid_argument on missing or ill-sorted inputs. *)

val triggered : t -> (string * Value.t) list -> string list
(** Names of all leaf instructions whose decode holds for this command
    in the current state (without stepping). *)
