open Ilv_expr

type t = { ila : Ila.t; mutable state : Eval.env }

type step_outcome =
  | Stepped of string
  | No_instruction
  | Ambiguous of string list

let create ila = { ila; state = Ila.init_env ila }
let reset sim = sim.state <- Ila.init_env sim.ila
let ila sim = sim.ila

let state sim name =
  match Eval.env_find name sim.state with
  | Some v -> v
  | None -> raise Not_found

let state_env sim = sim.state

let set_state sim env =
  List.iter
    (fun (st : Ila.state) ->
      match Eval.env_find st.Ila.state_name env with
      | None ->
        invalid_arg
          (Printf.sprintf "Ila_sim.set_state: missing state %s"
             st.Ila.state_name)
      | Some v ->
        if not (Sort.equal (Value.sort v) st.Ila.sort) then
          invalid_arg
            (Printf.sprintf "Ila_sim.set_state: state %s has wrong sort"
               st.Ila.state_name))
    sim.ila.Ila.states;
  let filtered =
    List.fold_left
      (fun acc (st : Ila.state) ->
        match Eval.env_find st.Ila.state_name env with
        | Some v -> Eval.env_add st.Ila.state_name v acc
        | None -> acc)
      Eval.env_empty sim.ila.Ila.states
  in
  sim.state <- filtered

let env_with_inputs sim command =
  let env =
    List.fold_left
      (fun env (name, sort) ->
        match List.assoc_opt name command with
        | None ->
          invalid_arg (Printf.sprintf "Ila_sim.step: missing input %s" name)
        | Some v ->
          if not (Sort.equal (Value.sort v) sort) then
            invalid_arg
              (Printf.sprintf "Ila_sim.step: input %s has wrong sort" name)
          else Eval.env_add name v env)
      sim.state sim.ila.Ila.inputs
  in
  List.iter
    (fun (name, _) ->
      if List.assoc_opt name sim.ila.Ila.inputs = None then
        invalid_arg (Printf.sprintf "Ila_sim.step: unknown input %s" name))
    command;
  env

let triggered sim command =
  let env = env_with_inputs sim command in
  List.filter_map
    (fun i ->
      if Eval.eval_bool env i.Ila.decode then Some i.Ila.instr_name else None)
    (Ila.leaf_instructions sim.ila)

let step sim command =
  let env = env_with_inputs sim command in
  let hot =
    List.filter
      (fun i -> Eval.eval_bool env i.Ila.decode)
      (Ila.leaf_instructions sim.ila)
  in
  match hot with
  | [] -> No_instruction
  | [ i ] ->
    let next =
      List.map
        (fun (name, e) -> (name, Eval.eval env e))
        (Ila.next_state_fn sim.ila i)
    in
    sim.state <- Eval.env_of_list next;
    Stepped i.Ila.instr_name
  | several -> Ambiguous (List.map (fun i -> i.Ila.instr_name) several)
