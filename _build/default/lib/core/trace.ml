open Ilv_expr

type t = {
  property : string;
  obligation : string;
  ila_vars : (string * Value.t) list;
  cycles : (int * (string * Value.t) list) list;
}

let split_rtl_var name =
  (* "rtl.foo@3" -> Some ("foo", 3) *)
  if String.length name > 4 && String.sub name 0 4 = "rtl." then
    match String.rindex_opt name '@' with
    | Some i ->
      let base = String.sub name 4 (i - 4) in
      (match int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) with
      | Some c -> Some (base, c)
      | None -> None)
    | None -> None
  else None

let strip_ila_prefix name =
  match String.length name with
  | n when n > 4 && String.sub name 0 4 = "ila." -> String.sub name 4 (n - 4)
  | _ -> name

let split_ila_var name =
  if String.length name > 4 && String.sub name 0 4 = "ila." then
    Some (String.sub name 4 (String.length name - 4))
  else None

let of_model ~property ~obligation ~vars ?(ila_values = []) model =
  let ila_vars = ref [] in
  let by_cycle : (int, (string * Value.t) list ref) Hashtbl.t =
    Hashtbl.create 8
  in
  List.iter
    (fun (name, sort) ->
      let v = model name sort in
      match split_ila_var name with
      | Some base -> ila_vars := (base, v) :: !ila_vars
      | None -> (
        match split_rtl_var name with
        | Some (base, c) ->
          let cell =
            match Hashtbl.find_opt by_cycle c with
            | Some r -> r
            | None ->
              let r = ref [] in
              Hashtbl.add by_cycle c r;
              r
          in
          cell := (base, v) :: !cell
        | None -> ()))
    vars;
  let cycles =
    Hashtbl.fold (fun c r acc -> (c, List.sort compare !r) :: acc) by_cycle []
    |> List.sort compare
  in
  let reconstructed =
    List.map (fun (n, v) -> (strip_ila_prefix n, v)) ila_values
  in
  {
    property;
    obligation;
    ila_vars = List.sort compare (reconstructed @ !ila_vars);
    cycles;
  }

let pp_value fmt v =
  match v with
  | Value.V_mem m when Value.Int_map.is_empty m.Value.assoc ->
    Format.fprintf fmt "mem(all=%a)" Bitvec.pp m.Value.default
  | _ -> Value.pp fmt v

let pp fmt t =
  let open Format in
  fprintf fmt "@[<v>counterexample for %s (%s):@," t.property t.obligation;
  fprintf fmt "  ILA start state / command:@,";
  List.iter
    (fun (n, v) -> fprintf fmt "    %-24s = %a@," n pp_value v)
    t.ila_vars;
  List.iter
    (fun (c, vars) ->
      fprintf fmt "  RTL cycle %d:@," c;
      List.iter
        (fun (n, v) -> fprintf fmt "    %-24s = %a@," n pp_value v)
        vars)
    t.cycles;
  fprintf fmt "@]"

let to_vcd t = Ilv_rtl.Vcd.of_signals ~name:"counterexample" t.cycles
