(** Mechanical derivation of a single-instruction ILA from an RTL
    design.

    Every synchronous module trivially refines the one-instruction ILA
    whose architectural states are its registers and whose [STEP]
    instruction applies one clock edge (with combinational wires
    inlined).  This is not an *abstraction* — no detail is hidden — but
    it is a powerful oracle: verifying any design against its derived
    ILA must always succeed, and must fail after any semantic mutation
    of the RTL.  The test suite uses this to fuzz the whole
    property-generation and checking pipeline. *)

open Ilv_rtl

val derive : Rtl.t -> Ila.t * Refmap.t
(** [derive rtl] is the trivial ILA (one [STEP] instruction that always
    decodes) and the identity refinement map connecting it back to
    [rtl].
    @raise Ila.Invalid_ila on designs whose names collide with the
    derived namespace (does not happen for the designs in this
    repository). *)
