(** Deciding expressions with the BDD backend.

    A second, independent decision procedure over the same
    {!Circuits} lowering as the bit-blaster — used for cross-checking
    the SAT path, and as the foundation of symbolic reachability.
    BDDs are canonical, so satisfiability/validity are read off the
    root; variable order is allocation order of the expression's free
    variables (bit-interleaved within each variable). *)

open Ilv_expr

type t

val create : unit -> t

val compile : t -> Expr.t -> Bdd.t
(** Compiles a boolean expression; free variables are allocated BDD
    variables on first sight (shared across calls on the same [t]). *)

type answer = Unsat | Sat of (string -> Sort.t -> Value.t)

val check : t -> Expr.t list -> answer
(** Decides the conjunction, with a model on satisfiability (variables
    not constrained by the BDD default to zeros). *)

val valid : t -> Expr.t -> bool
(** Is the expression true under every assignment? *)
