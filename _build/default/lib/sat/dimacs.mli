(** DIMACS CNF import/export.

    The bridge between the built-in solver and external SAT tooling:
    dump any bit-blasted query for cross-checking with another solver,
    or load standard benchmark instances into {!Sat}. *)

type problem = { n_vars : int; clauses : int list list }

val of_sat : Sat.t -> problem
val of_bitblast : Bitblast.t -> problem

val to_string : problem -> string
(** Standard DIMACS: a [p cnf V C] header and 0-terminated clauses. *)

val of_string : string -> problem
(** Parses DIMACS text; [c] comment lines and [%]/[0] trailers are
    ignored.
    @raise Invalid_argument on malformed input. *)

val solve : problem -> Sat.result
(** Loads the problem into a fresh solver and decides it. *)
