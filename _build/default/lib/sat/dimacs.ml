type problem = { n_vars : int; clauses : int list list }

let of_sat solver =
  let n_vars, clauses = Sat.export solver in
  { n_vars; clauses }

let of_bitblast ctx =
  let n_vars, clauses = Bitblast.cnf ctx in
  { n_vars; clauses }

let to_string p =
  let buf = Buffer.create (64 * List.length p.clauses) in
  Buffer.add_string buf
    (Printf.sprintf "p cnf %d %d\n" p.n_vars (List.length p.clauses));
  List.iter
    (fun clause ->
      List.iter (fun l -> Buffer.add_string buf (string_of_int l ^ " ")) clause;
      Buffer.add_string buf "0\n")
    p.clauses;
  Buffer.contents buf

let of_string text =
  let fail msg = invalid_arg ("Dimacs.of_string: " ^ msg) in
  let lines = String.split_on_char '\n' text in
  let n_vars = ref 0 in
  let clauses = ref [] in
  let current = ref [] in
  let header_seen = ref false in
  let handle_token tok =
    match int_of_string_opt tok with
    | None -> fail ("bad literal " ^ tok)
    | Some 0 ->
      clauses := List.rev !current :: !clauses;
      current := []
    | Some l ->
      if abs l > !n_vars then fail "literal out of range";
      current := l :: !current
  in
  List.iter
    (fun line ->
      let line = String.trim line in
      if line = "" || line.[0] = 'c' || line.[0] = '%' then ()
      else if line.[0] = 'p' then begin
        match String.split_on_char ' ' line |> List.filter (( <> ) "") with
        | [ "p"; "cnf"; v; _c ] -> (
          header_seen := true;
          match int_of_string_opt v with
          | Some v when v >= 0 -> n_vars := v
          | Some _ | None -> fail "bad header")
        | _ -> fail "bad header"
      end
      else begin
        if not !header_seen then fail "clause before header";
        String.split_on_char ' ' line
        |> List.filter (( <> ) "")
        |> List.iter handle_token
      end)
    lines;
  if !current <> [] then fail "unterminated clause";
  { n_vars = !n_vars; clauses = List.rev !clauses }

let solve p =
  let s = Sat.create () in
  for _ = 1 to p.n_vars do
    ignore (Sat.new_var s)
  done;
  List.iter (Sat.add_clause s) p.clauses;
  Sat.solve s
