open Ilv_expr

module Bdd_algebra = struct
  type man = Bdd.man
  type b = Bdd.t

  let tt = Bdd.tt
  let ff = Bdd.ff
  let neg = Bdd.neg
  let mk_and = Bdd.mk_and
  let mk_or = Bdd.mk_or
  let mk_xor = Bdd.mk_xor
  let mk_iff = Bdd.mk_iff
  let mk_ite = Bdd.mk_ite
end

module C = Circuits.Make (Bdd_algebra)

type t = {
  man : Bdd.man;
  compiler : C.compiler;
  vars : (string, Sort.t * int array) Hashtbl.t;
      (* BDD variable indices backing each expression variable, in bit
         order (memories: word-major) *)
  mutable next_var : int;
}

let create () =
  let man = Bdd.manager () in
  let vars = Hashtbl.create 64 in
  let t_ref = ref None in
  let fresh_var name sort =
    let t = Option.get !t_ref in
    let alloc n =
      let base = t.next_var in
      t.next_var <- t.next_var + n;
      Array.init n (fun i -> base + i)
    in
    let indices, bits =
      match sort with
      | Sort.Bool ->
        let idx = alloc 1 in
        (idx, C.B_bool (Bdd.var man idx.(0)))
      | Sort.Bitvec w ->
        let idx = alloc w in
        (idx, C.B_vec (Array.map (Bdd.var man) idx))
      | Sort.Mem { addr_width; data_width } ->
        let n = 1 lsl addr_width in
        let idx = alloc (n * data_width) in
        let words =
          Array.init n (fun i ->
              Array.init data_width (fun j ->
                  Bdd.var man idx.((i * data_width) + j)))
        in
        (idx, C.B_mem { C.addr_width; words })
    in
    Hashtbl.add t.vars name (sort, indices);
    bits
  in
  let t =
    { man; compiler = C.compiler man ~fresh_var; vars; next_var = 0 }
  in
  t_ref := Some t;
  t

let compile t e =
  if not (Sort.is_bool (Expr.sort e)) then
    raise (Expr.Sort_error "Bdd_check.compile: not a boolean");
  C.bool_bit t.compiler e

type answer = Unsat | Sat of (string -> Sort.t -> Value.t)

let model_of t assignment =
  let value_of_index i =
    match List.assoc_opt i assignment with Some b -> b | None -> false
  in
  fun name sort ->
    match Hashtbl.find_opt t.vars name with
    | Some (s, indices) when Sort.equal s sort -> (
      match sort with
      | Sort.Bool -> Value.of_bool (value_of_index indices.(0))
      | Sort.Bitvec _ ->
        Value.of_bv
          (Bitvec.of_bits (Array.to_list (Array.map value_of_index indices)))
      | Sort.Mem { addr_width; data_width } ->
        let m =
          ref
            (Value.to_mem
               (Value.mem_const ~addr_width ~default:(Bitvec.zero data_width)))
        in
        for i = 0 to (1 lsl addr_width) - 1 do
          let word =
            Bitvec.of_bits
              (List.init data_width (fun j ->
                   value_of_index indices.((i * data_width) + j)))
          in
          m := Value.mem_write !m (Bitvec.of_int ~width:addr_width i) word
        done;
        Value.V_mem !m)
    | Some _ | None -> Value.default_of_sort sort

let check t es =
  let conj =
    List.fold_left
      (fun acc e -> Bdd.mk_and t.man acc (compile t e))
      (Bdd.tt t.man) es
  in
  match Bdd.any_sat conj with
  | None -> Unsat
  | Some assignment -> Sat (model_of t assignment)

let valid t e = Bdd.is_tt (compile t e)
