type t = Leaf of bool | Node of { id : int; var : int; lo : t; hi : t }

let id = function Leaf false -> 0 | Leaf true -> 1 | Node { id; _ } -> id

module Key = struct
  type nonrec t = int * t * t

  let equal (v1, l1, h1) (v2, l2, h2) = v1 = v2 && l1 == l2 && h1 == h2
  let hash (v, l, h) = (v * 65599) + (id l * 31) + id h
end

module Unique = Hashtbl.Make (Key)

module Ite_key = struct
  type t = int * int * int

  let equal (a1, b1, c1) (a2, b2, c2) = a1 = a2 && b1 = b2 && c1 = c2
  let hash (a, b, c) = (a * 65599) + (b * 31) + c
end

module Ite_memo = Hashtbl.Make (Ite_key)

type man = {
  unique : t Unique.t;
  ite_memo : t Ite_memo.t;
  mutable next_id : int;
}

let manager () =
  { unique = Unique.create 4096; ite_memo = Ite_memo.create 4096; next_id = 2 }

let tt _ = Leaf true
let ff _ = Leaf false
let equal a b = a == b
let is_tt = function Leaf true -> true | Leaf false | Node _ -> false
let is_ff = function Leaf false -> true | Leaf true | Node _ -> false

let top_var = function Leaf _ -> max_int | Node { var; _ } -> var

let cofactor v f =
  match f with
  | Node { var; lo; hi; _ } when var = v -> (lo, hi)
  | _ -> (f, f)

let mk_node man var lo hi =
  if lo == hi then lo
  else begin
    let key = (var, lo, hi) in
    match Unique.find_opt man.unique key with
    | Some n -> n
    | None ->
      let n = Node { id = man.next_id; var; lo; hi } in
      man.next_id <- man.next_id + 1;
      Unique.add man.unique key n;
      n
  end

let var man v = mk_node man v (Leaf false) (Leaf true)

(* Shannon-expansion ite with memoization: the single primitive all
   connectives reduce to. *)
let rec mk_ite man f g h =
  match f with
  | Leaf true -> g
  | Leaf false -> h
  | Node _ ->
    if g == h then g
    else if is_tt g && is_ff h then f
    else begin
      let key = (id f, id g, id h) in
      match Ite_memo.find_opt man.ite_memo key with
      | Some r -> r
      | None ->
        let v = min (top_var f) (min (top_var g) (top_var h)) in
        let f0, f1 = cofactor v f in
        let g0, g1 = cofactor v g in
        let h0, h1 = cofactor v h in
        let lo = mk_ite man f0 g0 h0 in
        let hi = mk_ite man f1 g1 h1 in
        let r = mk_node man v lo hi in
        Ite_memo.add man.ite_memo key r;
        r
    end

let neg man f = mk_ite man f (Leaf false) (Leaf true)
let mk_and man a b = mk_ite man a b (Leaf false)
let mk_or man a b = mk_ite man a (Leaf true) b
let mk_xor man a b = mk_ite man a (neg man b) b
let mk_iff man a b = mk_ite man a b (neg man b)
let mk_imp man a b = mk_ite man a b (Leaf true)

let quantify man ~combine vars f =
  let vars = List.sort_uniq compare vars in
  let memo : (int, t) Hashtbl.t = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node { id; var; lo; hi } -> (
      match Hashtbl.find_opt memo id with
      | Some r -> r
      | None ->
        let r =
          if List.mem var vars then combine (go lo) (go hi)
          else mk_node man var (go lo) (go hi)
        in
        Hashtbl.add memo id r;
        r)
  in
  go f

let exists man vars f = quantify man ~combine:(mk_or man) vars f
let forall man vars f = quantify man ~combine:(mk_and man) vars f

(* Relational product: exists vars (f /\ g) in one pass. *)
let and_exists man vars f g =
  let in_vars =
    let tbl = Hashtbl.create 16 in
    List.iter (fun v -> Hashtbl.replace tbl v ()) vars;
    fun v -> Hashtbl.mem tbl v
  in
  let memo : (int * int, t) Hashtbl.t = Hashtbl.create 1024 in
  let rec go f g =
    if is_ff f || is_ff g then Leaf false
    else if is_tt f then exists man vars g
    else if is_tt g then exists man vars f
    else begin
      let key = if id f <= id g then (id f, id g) else (id g, id f) in
      match Hashtbl.find_opt memo key with
      | Some r -> r
      | None ->
        let v = min (top_var f) (top_var g) in
        let f0, f1 = cofactor v f in
        let g0, g1 = cofactor v g in
        let r =
          if in_vars v then begin
            let lo = go f0 g0 in
            if is_tt lo then lo
            else mk_or man lo (go f1 g1)
          end
          else mk_node man v (go f0 g0) (go f1 g1)
        in
        Hashtbl.add memo key r;
        r
    end
  in
  go f g

let rename man f_map f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 256 in
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node { id; var; lo; hi } -> (
      match Hashtbl.find_opt memo id with
      | Some r -> r
      | None ->
        let lo' = go lo and hi' = go hi in
        let v' = f_map var in
        if v' >= top_var lo' || v' >= top_var hi' then
          invalid_arg "Bdd.rename: mapping is not order-preserving";
        let r = mk_node man v' lo' hi' in
        Hashtbl.add memo id r;
        r)
  in
  go f

let restrict man v value f =
  let memo : (int, t) Hashtbl.t = Hashtbl.create 64 in
  let rec go f =
    match f with
    | Leaf _ -> f
    | Node { id; var; lo; hi } -> (
      if var > v then f
      else
        match Hashtbl.find_opt memo id with
        | Some r -> r
        | None ->
          let r =
            if var = v then if value then hi else lo
            else mk_node man var (go lo) (go hi)
          in
          Hashtbl.add memo id r;
          r)
  in
  go f

let any_sat f =
  let rec go acc = function
    | Leaf true -> Some (List.rev acc)
    | Leaf false -> None
    | Node { var; lo; hi; _ } -> (
      match go ((var, false) :: acc) lo with
      | Some a -> Some a
      | None -> go ((var, true) :: acc) hi)
  in
  go [] f

let size f =
  let seen = Hashtbl.create 64 in
  let rec go f =
    match f with
    | Leaf _ -> ()
    | Node { id; lo; hi; _ } ->
      if not (Hashtbl.mem seen id) then begin
        Hashtbl.add seen id ();
        go lo;
        go hi
      end
  in
  go f;
  Hashtbl.length seen + 2 (* the two leaves *)

let node_count man = man.next_id
