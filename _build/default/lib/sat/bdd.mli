(** Reduced ordered binary decision diagrams (ROBDDs).

    A second decision-procedure backend beside CDCL SAT: canonical
    (equality is physical), which makes validity checks constant-time
    after construction, and closed under boolean quantification — the
    basis of classic symbolic reachability ({!Ilv_core.Reach}).

    Variables are non-negative integers ordered by value (smaller =
    closer to the root).  All operations are memoized in the manager. *)

type man
type t

val manager : unit -> man

val tt : man -> t
val ff : man -> t
val var : man -> int -> t

val equal : t -> t -> bool
(** Physical equality — canonical by construction. *)

val is_tt : t -> bool
val is_ff : t -> bool

val neg : man -> t -> t
val mk_and : man -> t -> t -> t
val mk_or : man -> t -> t -> t
val mk_xor : man -> t -> t -> t
val mk_iff : man -> t -> t -> t
val mk_imp : man -> t -> t -> t
val mk_ite : man -> t -> t -> t -> t

val exists : man -> int list -> t -> t
(** Existential quantification over the listed variables. *)

val forall : man -> int list -> t -> t

val and_exists : man -> int list -> t -> t -> t
(** [and_exists man vars f g = exists man vars (mk_and man f g)], but
    computed in one pass (the relational product at the heart of image
    computation). *)

val rename : man -> (int -> int) -> t -> t
(** Variable renaming.  The mapping must be strictly monotone on the
    variables occurring in the BDD (it preserves the order), which the
    interleaved current/next encoding of {!Ilv_core.Reach} guarantees.
    @raise Invalid_argument if monotonicity is violated. *)

val restrict : man -> int -> bool -> t -> t
(** Cofactor: fix one variable to a constant. *)

val any_sat : t -> (int * bool) list option
(** A satisfying partial assignment ([None] iff the BDD is false). *)

val size : t -> int
(** Distinct nodes reachable from this root (including leaves). *)

val node_count : man -> int
(** Total nodes allocated in the manager. *)
