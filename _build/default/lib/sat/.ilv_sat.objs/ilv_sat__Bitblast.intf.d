lib/sat/bitblast.mli: Expr Ilv_expr Sat Sort Value
