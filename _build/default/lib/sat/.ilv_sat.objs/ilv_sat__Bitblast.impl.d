lib/sat/bitblast.ml: Array Bitvec Circuits Expr Format Hashtbl Ilv_expr List Sat Sort Value
