lib/sat/dimacs.mli: Bitblast Sat
