lib/sat/bdd_check.mli: Bdd Expr Ilv_expr Sort Value
