lib/sat/bdd.ml: Hashtbl List
