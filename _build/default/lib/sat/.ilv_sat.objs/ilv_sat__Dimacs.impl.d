lib/sat/dimacs.ml: Bitblast Buffer List Printf Sat String
