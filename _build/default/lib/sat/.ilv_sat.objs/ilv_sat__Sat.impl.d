lib/sat/sat.ml: Array List Option Printf Unix
