lib/sat/circuits.ml: Array Bitvec Expr Hashtbl Ilv_expr Seq Sort
