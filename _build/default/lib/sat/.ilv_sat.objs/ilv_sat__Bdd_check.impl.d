lib/sat/bdd_check.ml: Array Bdd Bitvec Circuits Expr Hashtbl Ilv_expr List Option Sort Value
