lib/sat/bdd.mli:
