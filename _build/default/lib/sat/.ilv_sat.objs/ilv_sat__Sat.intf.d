lib/sat/sat.mli:
