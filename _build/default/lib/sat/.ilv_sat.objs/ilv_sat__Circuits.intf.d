lib/sat/circuits.mli: Bitvec Expr Ilv_expr Sort
