(** Bit-blasting: lowering word-level expressions to CNF.

    Expressions are translated structurally with Tseitin encoding; a
    gate cache keeps the CNF linear in the expression DAG.  Memories are
    flattened into one word per address (reads become mux trees, writes
    become per-word updates), which is exact for the small memories used
    by the case studies and mirrors how hardware model checkers treat
    embedded RAMs.

    The word-level circuits themselves are shared with the BDD backend
    through {!Circuits}; this module instantiates them over solver
    literals.

    A context accumulates assertions over a shared variable namespace
    (a variable name + sort always maps to the same CNF bits);
    {!check} and {!check_under} decide their conjunction, incrementally
    (clauses and learnt facts persist across queries). *)

open Ilv_expr

type t

val create : unit -> t

val assert_bool : t -> Expr.t -> unit
(** Asserts a boolean expression to be true (permanently).
    @raise Expr.Sort_error if the expression is not boolean. *)

val assert_not : t -> Expr.t -> unit
(** Asserts a boolean expression to be false (permanently). *)

val lit_of : t -> Expr.t -> int
(** The solver literal holding a boolean expression's value (defining
    clauses are added as needed). *)

type answer =
  | Unsat
  | Sat of (string -> Sort.t -> Value.t)
      (** A model: query a variable by name and sort.  Variables that
          never reached the solver get default (all-zero) values.  The
          closure reads the solver's current model: use it before the
          next [check]/[assert]. *)
  | Unknown of string
      (** the solver's resource budget ran out ({!Sat.limit}); never
          returned when no [limit] is passed *)

val check : ?limit:Sat.limit -> t -> answer
(** Decides the conjunction of all assertions.  May be called
    repeatedly, interleaved with further assertions (incremental use;
    learnt clauses are reused across calls).  With [limit], gives up
    with [Unknown] once a bound is exceeded (the context stays
    usable). *)

val check_under : ?limit:Sat.limit -> t -> hypotheses:Expr.t list -> answer
(** Like {!check}, additionally assuming the hypotheses for this query
    only (via solver assumptions — nothing is permanently asserted). *)

val cnf : t -> int * int list list
(** The accumulated CNF ([n_vars], clauses as external literals), for
    DIMACS export. *)

val cnf_size : t -> int * int
(** [(variables, clauses)] created so far. *)

val solver_stats : t -> Sat.stats
