examples/spec_gap.mli:
