examples/spec_gap.ml: Build Compose Format Ila Ila_sim Ilv_core Ilv_expr List Pp_expr Printf Sort String Value
