examples/soc_8051.mli:
