examples/noc_audit.ml: Compose Design Format Ila Ila_check Ilv_core Ilv_designs List Noc_router String Verify
