examples/artifacts.mli:
