examples/noc_audit.mli:
