examples/axi_bridge.ml: Axi_master Axi_slave Design Format Ilv_core Ilv_designs Ilv_expr Ilv_rtl List Sim Value Verify
