examples/artifacts.ml: Catalog Char Checker Compose Design Filename Format Ila Ila_text Ilv_core Ilv_designs Ilv_rtl List Module_ila Option Refmap_text String Sys Trace Verify
