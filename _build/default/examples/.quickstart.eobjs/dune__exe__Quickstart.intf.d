examples/quickstart.mli:
