examples/quickstart.ml: Build Compose Format Ila Ila_check Ilv_core Ilv_expr Ilv_rtl Refmap Rtl Sort Value Verify
