examples/axi_bridge.mli:
