examples/soc_8051.ml: Array Checker Datapath_8051 Decoder_8051 Design Format Ila Ila_check Ilv_core Ilv_designs List Mem_iface_8051 Module_ila Sys Verify
