(* Quickstart: specify, implement and verify a small hardware module.

   The module is a command-driven min/max tracker: it watches a stream
   of samples and keeps the smallest and largest value seen since the
   last reset command.  We
     1. write its ILA (the instruction-level spec),
     2. write an RTL implementation,
     3. connect them with a refinement map,
     4. let the tool generate and check the complete property set,
     5. break the implementation and look at the counterexample.

   Run with: dune exec examples/quickstart.exe *)

open Ilv_expr
open Ilv_rtl
open Ilv_core
open Build

(* ---------------------------------------------------------------- *)
(* 1. The specification: an ILA                                      *)
(*                                                                   *)
(* The command interface is (cmd, sample): cmd 1 = TRACK a sample,   *)
(* cmd 2 = RESET the bounds, anything else = NOP.  Architectural     *)
(* state: the running minimum and maximum.                           *)
(* ---------------------------------------------------------------- *)

let ila =
  let cmd = bv_var "cmd" 2 in
  let sample = bv_var "sample" 8 in
  let low = bv_var "low" 8 in
  let high = bv_var "high" 8 in
  Ila.make ~name:"MINMAX"
    ~inputs:[ ("cmd", Sort.bv 2); ("sample", Sort.bv 8) ]
    ~states:
      [
        Ila.state "low" (Sort.bv 8) ~init:(Value.of_int ~width:8 255) ();
        Ila.state "high" (Sort.bv 8) ();
      ]
    ~instructions:
      [
        Ila.instr "TRACK" ~decode:(eq_int cmd 1)
          ~updates:
            [
              ("low", ite (sample <: low) sample low);
              ("high", ite (sample >: high) sample high);
            ]
          ();
        Ila.instr "RESET" ~decode:(eq_int cmd 2)
          ~updates:[ ("low", bv ~width:8 255); ("high", bv ~width:8 0) ]
          ();
        Ila.instr "NOP"
          ~decode:(not_ (eq_int cmd 1) &&: not_ (eq_int cmd 2))
          ~updates:[] ();
      ]

(* ---------------------------------------------------------------- *)
(* 2. The implementation                                             *)
(*                                                                   *)
(* The RTL computes the comparisons through a shared subtractor      *)
(* (checking the borrow) instead of two comparators — a typical      *)
(* implementation trick the refinement check must see through.      *)
(* ---------------------------------------------------------------- *)

let rtl ~buggy =
  let cmd = bv_var "cmd" 2 in
  let sample = bv_var "sample" 8 in
  let low_q = bv_var "low_q" 8 in
  let high_q = bv_var "high_q" 8 in
  let borrow a b = bit (zext a 9 -: zext b 9) 8 in
  Rtl.make ~name:(if buggy then "minmax_buggy" else "minmax")
    ~inputs:[ ("cmd", Sort.bv 2); ("sample", Sort.bv 8) ]
    ~wires:
      [
        ("track", eq_int cmd 1);
        ("reset", eq_int cmd 2);
        ("below", borrow sample low_q);
        (* BUG in the buggy variant: >= instead of > keeps rewriting
           the maximum with equal samples — harmless — but the
           injected mistake swaps the operands, so the test is
           really "high < sample" computed as "sample < high". *)
        ( "above",
          if buggy then borrow sample high_q else borrow high_q sample );
      ]
    ~registers:
      [
        Rtl.reg "low_q" (Sort.bv 8)
          ~init:(Value.of_int ~width:8 255)
          (ite (bool_var "reset") (bv ~width:8 255)
             (ite (bool_var "track" &&: bool_var "below") sample low_q));
        Rtl.reg "high_q" (Sort.bv 8)
          (ite (bool_var "reset") (bv ~width:8 0)
             (ite (bool_var "track" &&: bool_var "above") sample high_q));
      ]
    ~outputs:[ "low_q"; "high_q" ]

(* ---------------------------------------------------------------- *)
(* 3. The refinement map                                             *)
(* ---------------------------------------------------------------- *)

let refmap rtl =
  Refmap.make ~ila ~rtl
    ~state_map:[ ("low", bv_var "low_q" 8); ("high", bv_var "high_q" 8) ]
    ~interface_map:
      [ ("cmd", bv_var "cmd" 2); ("sample", bv_var "sample" 8) ]
    ~instruction_maps:
      [
        Refmap.imap "TRACK" (Refmap.After_cycles 1);
        Refmap.imap "RESET" (Refmap.After_cycles 1);
        Refmap.imap "NOP" (Refmap.After_cycles 1);
      ]
    ()

(* ---------------------------------------------------------------- *)
(* 4. Verify                                                         *)
(* ---------------------------------------------------------------- *)

let verify rtl =
  let module_ila = Compose.union ~name:"MINMAX" [ ila ] in
  Verify.run ~name:"minmax" module_ila rtl ~refmap_for:(fun _ -> refmap rtl)

let () =
  Format.printf "The specification:@.@.%a@.@." Ila.pp_sketch ila;
  (* the decode functions cover every command and never overlap *)
  (match (Ila_check.coverage ila, Ila_check.determinism ila) with
  | Ila_check.Covered, Ila_check.Deterministic ->
    Format.printf "decode functions: complete and deterministic@.@."
  | _ -> Format.printf "decode functions: incomplete or ambiguous!@.@.");
  (* verify the good implementation: a complete set of properties is
     generated (one per instruction) and discharged *)
  let good = verify (rtl ~buggy:false) in
  Format.printf "%a@.@." Verify.pp_report good;
  (* now the broken one *)
  Format.printf "Injecting the swapped-comparison bug...@.@.";
  let bad = verify (rtl ~buggy:true) in
  Format.printf "%a@." Verify.pp_report bad;
  if Verify.proved good && not (Verify.proved bad) then
    Format.printf
      "@.quickstart complete: the good design proves, the bug is caught.@."
  else begin
    Format.printf "@.unexpected result!@.";
    exit 1
  end
