(* Specification gaps: what the methodology reports when the informal
   spec does not say who wins.

   Two ports share a status register: the control port can force the
   device ON or OFF, while the watchdog port forces it OFF on timeout.
   The informal spec forgot to say what happens when the user forces ON
   in the same cycle the watchdog fires.  Integration flags exactly
   that combination as a gap; adding the safety rule ("the watchdog
   wins") resolves it.

   Run with: dune exec examples/spec_gap.exe *)

open Ilv_expr
open Ilv_core
open Build

let control_port =
  let force_on = bool_var "force_on" in
  let force_off = bool_var "force_off" in
  Ila.make ~name:"CONTROL"
    ~inputs:[ ("force_on", Sort.bool); ("force_off", Sort.bool) ]
    ~states:[ Ila.state "status" Sort.bool () ]
    ~instructions:
      [
        Ila.instr "FORCE_ON" ~decode:(force_on &&: not_ force_off)
          ~updates:[ ("status", tt) ]
          ();
        Ila.instr "FORCE_OFF" ~decode:force_off
          ~updates:[ ("status", ff) ]
          ();
        Ila.instr "CTL_IDLE"
          ~decode:(not_ force_on &&: not_ force_off)
          ~updates:[] ();
      ]

let watchdog_port =
  let timeout = bool_var "timeout" in
  Ila.make ~name:"WATCHDOG"
    ~inputs:[ ("timeout", Sort.bool) ]
    ~states:[ Ila.state "status" Sort.bool () ]
    ~instructions:
      [
        Ila.instr "WD_TRIP" ~decode:timeout ~updates:[ ("status", ff) ] ();
        Ila.instr "WD_IDLE" ~decode:(not_ timeout) ~updates:[] ();
      ]

let () =
  (* integration without any resolution rule *)
  (match Compose.integrate ~name:"STATUS" [ control_port; watchdog_port ] with
  | Ok _ -> Format.printf "unexpected: no gap found@."
  | Error gaps ->
    Format.printf
      "The informal specification leaves %d combination(s) unresolved:@."
      (List.length gaps);
    List.iter
      (fun (g : Compose.gap) ->
        Format.printf
          "  gap: instruction %S updates %s conflictingly (%s)@."
          g.Compose.combined_instr g.Compose.state
          (String.concat " vs "
             (List.map
                (fun (w : Compose.writer) ->
                  Printf.sprintf "%s wants %s" w.Compose.port
                    (Pp_expr.infix_to_string w.Compose.update))
                g.Compose.writers)))
      gaps);

  (* the fix: a safety rule — an update to OFF (false) has priority *)
  Format.printf
    "@.Adding the safety rule \"the watchdog wins\" (update to OFF has \
     priority):@.";
  match
    Compose.integrate ~name:"STATUS"
      ~resolve:(Compose.Resolve.priority_value (Value.of_bool false))
      [ control_port; watchdog_port ]
  with
  | Error _ ->
    Format.printf "still gaps?!@.";
    exit 1
  | Ok integrated ->
    Format.printf "integration succeeds with %d instructions:@.@.%a@."
      (List.length (Ila.leaf_instructions integrated))
      Ila.pp_sketch integrated;
    (* demonstrate the resolved semantics *)
    let sim = Ila_sim.create integrated in
    ignore
      (Ila_sim.step sim
         [
           ("force_on", Value.of_bool true);
           ("force_off", Value.of_bool false);
           ("timeout", Value.of_bool true);
         ]);
    Format.printf
      "FORCE_ON together with WD_TRIP leaves status = %b (watchdog wins)@."
      (Value.to_bool (Ila_sim.state sim "status"))
