(* Artifact generator: writes every machine-readable form of the case
   studies into ./artifacts — the shape of an actual release of the
   paper's models:

     artifacts/<design>/<port>.ila        textual ILA model
     artifacts/<design>/<port>.refmap     textual refinement map
     artifacts/<design>/rtl.v             Verilog-2001 export
     artifacts/<design>/<first-bug>.vcd   counterexample waveform (buggy designs)

   Run with: dune exec examples/artifacts.exe *)

open Ilv_core
open Ilv_designs

let write path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let slug s =
  String.map
    (fun c ->
      match c with
      | 'a' .. 'z' | 'A' .. 'Z' | '0' .. '9' -> Char.lowercase_ascii c
      | _ -> '_')
    s

let () =
  let root = "artifacts" in
  if not (Sys.file_exists root) then Sys.mkdir root 0o755;
  let files = ref 0 in
  List.iter
    (fun (d : Design.t) ->
      let dir = Filename.concat root (slug d.Design.name) in
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let emit name contents =
        write (Filename.concat dir name) contents;
        incr files
      in
      List.iter
        (fun (port : Ila.t) ->
          emit (slug port.Ila.name ^ ".ila") (Ila_text.print port);
          emit
            (slug port.Ila.name ^ ".refmap")
            (Refmap_text.print (d.Design.refmap_for d.Design.rtl port.Ila.name)))
        d.Design.module_ila.Module_ila.ports;
      emit "rtl.v" (Ilv_rtl.Verilog.emit d.Design.rtl);
      (* a counterexample waveform for each published bug *)
      List.iter
        (fun (bug : Design.bug) ->
          let report = Design.verify_buggy d bug in
          match report.Verify.first_failure with
          | Some { verdict = Checker.Failed trace; _ } ->
            emit (slug bug.Design.bug_label ^ ".vcd") (Trace.to_vcd trace)
          | _ -> ())
        d.Design.bugs)
    (Catalog.quick @ Catalog.extensions);
  Format.printf "wrote %d artifact files under %s/@." !files root;
  (* prove the artifacts are not write-only: reload one of each kind *)
  let decoder = Option.get (Catalog.find "Decoder") in
  let reloaded_ila =
    Ila_text.parse
      (Ila_text.print (List.hd decoder.Design.module_ila.Module_ila.ports))
  in
  let reloaded_map =
    Refmap_text.parse ~ila:reloaded_ila ~rtl:decoder.Design.rtl
      (Refmap_text.print
         (decoder.Design.refmap_for decoder.Design.rtl "DECODER"))
  in
  let report =
    Verify.run ~name:"reloaded decoder"
      (Compose.union ~name:"DECODER" [ reloaded_ila ])
      decoder.Design.rtl
      ~refmap_for:(fun _ -> reloaded_map)
  in
  Format.printf "round-trip check: reloaded decoder model + map verify: %s@."
    (if Verify.proved report then "PROVED" else "FAILED");
  if not (Verify.proved report) then exit 1
