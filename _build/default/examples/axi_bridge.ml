(* AXI bridge: the verified master and slave, wired back to back.

   Both endpoints are first refinement-checked against their ILAs; the
   two RTL implementations are then co-simulated with the master's AXI
   outputs registered into the slave's inputs and vice versa, and a
   read burst is driven end to end.

   Run with: dune exec examples/axi_bridge.exe *)

open Ilv_expr
open Ilv_rtl
open Ilv_core
open Ilv_designs

let bool_v b = Value.of_bool b
let bv_v w n = Value.of_int ~width:w n

let () =
  (* 1. verify both endpoints *)
  List.iter
    (fun (d : Design.t) ->
      let report = Design.verify d in
      Format.printf "%-12s: %s (%.3fs)@." d.Design.name
        (if Verify.proved report then "verified" else "FAILED")
        report.Verify.total_time_s;
      if not (Verify.proved report) then exit 1)
    [ Axi_master.design; Axi_slave.design ];

  (* 2. wire them together and run a 3-beat read burst *)
  let master = Sim.create Axi_master.design.Design.rtl in
  let slave = Sim.create Axi_slave.design.Design.rtl in
  let collected = ref [] in
  let saw_done = ref false in
  let beats = 3 in
  Format.printf "@.Driving a %d-beat read burst through the bridge:@." beats;
  for cycle = 0 to 24 do
    (* sample the endpoint states (registered coupling) *)
    let m_fsm = Sim.peek_int master "rd_fsm" in
    let m_ar_valid = m_fsm = 1 in
    let m_in_data = m_fsm >= 2 in
    let m_ar_addr = Sim.peek_int master "rd_addr_q" in
    let m_ar_len = Sim.peek_int master "rd_len_q" in
    let s_ar_ready = Value.to_bool (Sim.peek slave "rd_aready_q") in
    let s_rd_valid = Value.to_bool (Sim.peek slave "rd_valid_q") in
    let s_rd_data = Sim.peek_int slave "rd_data_q" in
    let s_len = Sim.peek_int slave "rd_len_q" in
    let s_active = Value.to_bool (Sim.peek slave "rd_active_q") in
    (* the master consumes a presented beat on odd cycles (a simple
       RREADY pacing); the last beat is the one that exhausts the
       slave's remaining length *)
    let rd_data_ready = m_in_data && cycle land 1 = 1 in
    let s_rd_last = s_active && s_len = 1 in
    if s_rd_valid && rd_data_ready then
      collected := s_rd_data :: !collected;
    (* drive the slave: AR channel from the master, fresh downstream
       fifo data per beat *)
    Sim.cycle slave
      [
        ("rd_addr_valid", bool_v m_ar_valid);
        ("rd_addr_in", bv_v 8 m_ar_addr);
        ("rd_length_in", bv_v 4 m_ar_len);
        ("rd_burst_in", bool_v true) (* INCR *);
        ("rd_data_ready", bool_v rd_data_ready);
        ("rd_fifo_in", bv_v 16 (0x1100 + cycle));
        (* quiet write channel *)
        ("wr_addr_valid", bool_v false);
        ("wr_addr_in", bv_v 8 0);
        ("wr_length_in", bv_v 4 0);
        ("wr_data_in", bv_v 16 0);
        ("wr_data_valid", bool_v false);
      ];
    (* drive the master: host request on cycle 0, then AXI responses
       from the slave *)
    Sim.cycle master
      [
        ("host_rd_req", bool_v (cycle = 0));
        ("host_rd_addr", bv_v 8 0x40);
        ("host_rd_len", bv_v 4 beats);
        ("s_ar_ready", bool_v s_ar_ready);
        ("s_rd_valid", bool_v (s_rd_valid && rd_data_ready));
        ("s_rd_data", bv_v 16 s_rd_data);
        ("s_rd_last", bool_v s_rd_last);
        (* quiet write channel *)
        ("host_wr_req", bool_v false);
        ("host_wr_addr", bv_v 8 0);
        ("host_wr_len", bv_v 4 0);
        ("host_wr_data", bv_v 16 0);
        ("s_aw_ready", bool_v false);
        ("s_w_ready", bool_v false);
        ("s_b_valid", bool_v false)
      ];
    if s_rd_valid && rd_data_ready then
      Format.printf "  cycle %2d: beat 0x%04x accepted (slave len left %d)@."
        cycle s_rd_data s_len;
    (* host_rd_done is a one-cycle completion pulse *)
    if Value.to_bool (Sim.peek master "rd_done_q") then saw_done := true
  done;
  let done_ = !saw_done in
  let beats_seen = List.length !collected in
  Format.printf "@.master done=%b, beats transferred=%d, last data=0x%04x@."
    done_ beats_seen
    (Sim.peek_int master "rd_data_q");
  if done_ && beats_seen >= beats then
    Format.printf "bridge transaction completed end to end.@."
  else begin
    Format.printf "bridge transaction did not complete!@.";
    exit 1
  end
