(* NoC router audit: specification-gap detection and round-robin
   integration on the OpenPiton router's shared routing table.

   All five IN-ports can install routes into the dynamic routing table,
   so two config flits arriving in the same cycle conflict.  Naive
   integration flags every such combination as a specification gap; the
   round-robin arbiter from the informal spec resolves them, and the
   resulting 32-instruction port verifies against the RTL.

   Run with: dune exec examples/noc_audit.exe *)

open Ilv_core
open Ilv_designs

let () =
  let in_ports = List.init 5 Noc_router.in_port in
  (* 1. what happens without the arbiter? *)
  (match Compose.integrate ~name:"IN-naive" in_ports with
  | Ok _ -> Format.printf "unexpected: no conflicts?@."
  | Error gaps ->
    Format.printf
      "Integrating the 5 IN-ports without an arbiter leaves %d instruction \
       combinations with conflicting routing-table updates.@.Examples:@."
      (List.length gaps);
    List.iteri
      (fun i (g : Compose.gap) ->
        if i < 4 then
          Format.printf "  %-55s writers: %s@." g.Compose.combined_instr
            (String.concat ", "
               (List.map (fun (w : Compose.writer) -> w.Compose.port)
                  g.Compose.writers)))
      gaps);

  (* 2. the specification's round-robin arbiter resolves all of them *)
  let integrated = Noc_router.in_port_integrated in
  Format.printf
    "@.With the round-robin arbiter: %d cross-product instructions, no \
     gaps.@."
    (List.length (Ila.leaf_instructions integrated));

  (* 3. decode completeness of the integrated port *)
  (match Ila_check.coverage integrated with
  | Ila_check.Covered ->
    Format.printf "decode coverage of the integrated IN port: complete@."
  | Ila_check.Uncovered _ -> Format.printf "coverage gap!@.");
  (match Ila_check.determinism integrated with
  | Ila_check.Deterministic ->
    Format.printf "decode determinism of the integrated IN port: ok@."
  | Ila_check.Overlap { instr_a; instr_b; _ } ->
    Format.printf "overlap between %s and %s!@." instr_a instr_b);

  (* 4. full refinement verification of the router *)
  let report = Design.verify Noc_router.design in
  Format.printf
    "@.refinement verification of the router (64 instructions over IN and \
     OUT): %s in %.3fs@."
    (if Verify.proved report then "PROVED" else "FAILED")
    report.Verify.total_time_s;
  if not (Verify.proved report) then exit 1
