(* The paper's headline: verify ALL the modules of the open-source 8051
   micro-controller — decoder, memory interface and datapath — against
   their ILAs.

   Run with: dune exec examples/soc_8051.exe
   (add --full to verify the datapath with the full 256-byte internal
   RAM instead of the 16-byte abstraction; expect a couple of minutes) *)

open Ilv_core
open Ilv_designs

let full = Array.exists (fun a -> a = "--full") Sys.argv

let () =
  let modules =
    [
      Decoder_8051.design;
      Mem_iface_8051.design;
      (if full then Datapath_8051.design else Datapath_8051.design_abstract);
    ]
  in
  Format.printf
    "Verifying all modules of the 8051 micro-controller (paper Sec. V):@.@.";
  let all_proved =
    List.for_all
      (fun (d : Design.t) ->
        Format.printf "--- %s (%s) ---@." d.Design.name
          (Design.class_to_string d.Design.module_class);
        (* model-level completeness first: every command decodes *)
        List.iter
          (fun (port : Ila.t) ->
            let assuming = d.Design.coverage_assumptions port.Ila.name in
            match Ila_check.coverage ~assuming port with
            | Ila_check.Covered ->
              Format.printf "  port %-14s: every command is specified@."
                port.Ila.name
            | Ila_check.Uncovered _ ->
              Format.printf "  port %-14s: SPECIFICATION GAP@." port.Ila.name)
          d.Design.module_ila.Module_ila.ports;
        (* then the complete instruction-by-instruction refinement check *)
        let report = Design.verify d in
        List.iter
          (fun (p : Verify.port_report) ->
            List.iter
              (fun (ir : Verify.instr_result) ->
                Format.printf "  %-14s %-28s %s (%.3fs)@." p.Verify.port_name
                  ir.Verify.instr
                  (match ir.Verify.verdict with
                  | Checker.Proved -> "proved"
                  | Checker.Failed _ -> "FAILED"
                  | Checker.Unknown _ -> "UNKNOWN")
                  ir.Verify.stats.Checker.time_s)
              p.Verify.instr_results)
          report.Verify.ports;
        Format.printf "  => %s in %.3fs@.@."
          (if Verify.proved report then "module verified" else "FAILED")
          report.Verify.total_time_s;
        Verify.proved report)
      modules
  in
  if all_proved then
    Format.printf
      "All 8051 modules verified against their instruction-level \
       abstractions.@."
  else exit 1
